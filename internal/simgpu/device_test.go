package simgpu

import (
	"errors"
	"math"
	"testing"
	"time"

	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

func newDev(t *testing.T, cfg DeviceConfig) (*simtime.Virtual, *Device) {
	t.Helper()
	eng := simtime.NewVirtual()
	return eng, NewDevice(eng, cfg)
}

func mustClient(t *testing.T, d *Device, cfg ClientConfig) *Client {
	t.Helper()
	c, err := d.NewClient(cfg)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	return c
}

func TestSoloKernelRunsAtSpecDuration(t *testing.T) {
	eng, d := newDev(t, DeviceConfig{})
	c := mustClient(t, d, ClientConfig{Name: "train"})
	var doneAt time.Duration
	if err := c.Launch(&KernelSpec{Name: "fp", Duration: time.Second}, func(err error) {
		if err != nil {
			t.Errorf("completion err = %v", err)
		}
		doneAt = eng.Now()
	}); err != nil {
		t.Fatalf("Launch: %v", err)
	}
	eng.MustDrain(100)
	if doneAt != time.Second {
		t.Fatalf("kernel finished at %v, want 1s", doneAt)
	}
	if d.KernelsCompleted() != 1 {
		t.Fatalf("KernelsCompleted = %d, want 1", d.KernelsCompleted())
	}
}

func TestPartialDemandKernelSameDuration(t *testing.T) {
	// A kernel with demand 0.5 uses half the SMs but still takes its solo
	// duration when unshared.
	eng, d := newDev(t, DeviceConfig{})
	c := mustClient(t, d, ClientConfig{Name: "side"})
	var doneAt time.Duration
	c.Launch(&KernelSpec{Name: "step", Duration: time.Second, Demand: 0.5}, func(error) {
		doneAt = eng.Now()
	})
	eng.RunUntil(500 * time.Millisecond)
	if occ := d.Occupancy().At(250 * time.Millisecond); math.Abs(occ-0.5) > 1e-9 {
		t.Fatalf("occupancy mid-kernel = %v, want 0.5", occ)
	}
	eng.MustDrain(100)
	if doneAt != time.Second {
		t.Fatalf("finished at %v, want 1s", doneAt)
	}
}

func TestSlowerDeviceStretchesKernels(t *testing.T) {
	eng, d := newDev(t, DeviceConfig{Capacity: 0.5})
	c := mustClient(t, d, ClientConfig{Name: "x"})
	var doneAt time.Duration
	c.Launch(&KernelSpec{Name: "k", Duration: time.Second}, func(error) { doneAt = eng.Now() })
	eng.MustDrain(100)
	if doneAt != 2*time.Second {
		t.Fatalf("finished at %v, want 2s on half-capacity device", doneAt)
	}
}

func TestClientKernelsSerializeFIFO(t *testing.T) {
	eng, d := newDev(t, DeviceConfig{})
	c := mustClient(t, d, ClientConfig{Name: "x"})
	var order []string
	for _, name := range []string{"k1", "k2", "k3"} {
		name := name
		c.Launch(&KernelSpec{Name: name, Duration: time.Second}, func(error) {
			order = append(order, name)
		})
	}
	if got := c.QueueDepth(); got != 3 {
		t.Fatalf("QueueDepth = %d, want 3", got)
	}
	eng.MustDrain(100)
	if len(order) != 3 || order[0] != "k1" || order[1] != "k2" || order[2] != "k3" {
		t.Fatalf("order = %v, want [k1 k2 k3]", order)
	}
	if eng.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s (serialized)", eng.Now())
	}
}

func TestMPSWeightedSharing(t *testing.T) {
	// Training kernel (w=1, d=1) vs Graph-SGD-like kernel (w=4, d=0.85):
	// training gets 1/5 of the device, SGD gets 4/5.
	eng, d := newDev(t, DeviceConfig{Policy: PolicyMPS})
	train := mustClient(t, d, ClientConfig{Name: "train"})
	side := mustClient(t, d, ClientConfig{Name: "sgd"})

	var trainDone, sideDone time.Duration
	side.Launch(&KernelSpec{Name: "sgd", Duration: time.Second, Demand: 0.85, Weight: 4}, func(error) {
		sideDone = eng.Now()
	})
	train.Launch(&KernelSpec{Name: "fp", Duration: time.Second, Demand: 1, Weight: 1}, func(error) {
		trainDone = eng.Now()
	})
	eng.RunUntil(100 * time.Millisecond)
	occ := d.Occupancy().At(50 * time.Millisecond)
	if math.Abs(occ-1.0) > 1e-9 {
		t.Fatalf("total occupancy = %v, want 1.0 (saturated)", occ)
	}
	if got := train.OccTrace().At(50 * time.Millisecond); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("train alloc = %v, want 0.2", got)
	}
	eng.MustDrain(100)
	// SGD work = 0.85 SM-s at rate 0.8 => 1.0625s. Training runs at 0.2
	// until then, completing 0.2125 of its 1.0 work, then expands to full
	// rate: total = 1.0625 + 0.7875 = 1.85s.
	if math.Abs(sideDone.Seconds()-1.0625) > 1e-3 {
		t.Fatalf("side done at %v, want ~1.0625s", sideDone)
	}
	if math.Abs(trainDone.Seconds()-1.85) > 1e-3 {
		t.Fatalf("train done at %v, want ~1.85s", trainDone)
	}
}

func TestMPSLightSideTaskBarelyInterferes(t *testing.T) {
	// Image-processing-like kernel (w=0.15, d=0.3) vs training: training
	// keeps ~87% of the device.
	eng, d := newDev(t, DeviceConfig{Policy: PolicyMPS})
	train := mustClient(t, d, ClientConfig{Name: "train"})
	side := mustClient(t, d, ClientConfig{Name: "img"})
	side.Launch(&KernelSpec{Name: "img", Duration: 10 * time.Second, Demand: 0.3, Weight: 0.15}, nil)
	train.Launch(&KernelSpec{Name: "fp", Duration: time.Second}, nil)
	eng.RunUntil(100 * time.Millisecond)
	got := train.OccTrace().At(50 * time.Millisecond)
	want := 1.0 / 1.15
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("train alloc = %v, want %v", got, want)
	}
	eng.MustDrain(100)
}

func TestMPSDemandCappedKernelLeavesCapacity(t *testing.T) {
	// Two kernels with small demands fit side by side without stretching.
	eng, d := newDev(t, DeviceConfig{Policy: PolicyMPS})
	a := mustClient(t, d, ClientConfig{Name: "a"})
	b := mustClient(t, d, ClientConfig{Name: "b"})
	var aDone, bDone time.Duration
	a.Launch(&KernelSpec{Name: "ka", Duration: time.Second, Demand: 0.4}, func(error) { aDone = eng.Now() })
	b.Launch(&KernelSpec{Name: "kb", Duration: time.Second, Demand: 0.5}, func(error) { bDone = eng.Now() })
	eng.MustDrain(100)
	if aDone != time.Second || bDone != time.Second {
		t.Fatalf("done at %v/%v, want 1s/1s (no contention)", aDone, bDone)
	}
}

func TestTimeSliceHalvesRates(t *testing.T) {
	eng, d := newDev(t, DeviceConfig{Policy: PolicyTimeSlice})
	a := mustClient(t, d, ClientConfig{Name: "a"})
	b := mustClient(t, d, ClientConfig{Name: "b"})
	var aDone time.Duration
	a.Launch(&KernelSpec{Name: "ka", Duration: time.Second, Demand: 1}, func(error) { aDone = eng.Now() })
	b.Launch(&KernelSpec{Name: "kb", Duration: 10 * time.Second, Demand: 1}, nil)
	eng.RunUntil(1900 * time.Millisecond)
	if aDone != 0 {
		t.Fatalf("a done at %v, want not yet (time-sliced)", aDone)
	}
	eng.MustDrain(100)
	if math.Abs(aDone.Seconds()-2.0) > 1e-3 {
		t.Fatalf("a done at %v, want ~2s (half rate)", aDone)
	}
}

func TestMemAccountingAndClientLimit(t *testing.T) {
	_, d := newDev(t, DeviceConfig{MemBytes: 100})
	c := mustClient(t, d, ClientConfig{Name: "x", MemLimitBytes: 40})
	if err := c.AllocMem(30); err != nil {
		t.Fatalf("AllocMem(30): %v", err)
	}
	err := c.AllocMem(20)
	if !errors.Is(err, ErrClientOOM) {
		t.Fatalf("AllocMem over limit = %v, want ErrClientOOM", err)
	}
	if c.MemUsed() != 30 {
		t.Fatalf("MemUsed = %d, want 30 (failed alloc must not charge)", c.MemUsed())
	}
	c.FreeMem(10)
	if err := c.AllocMem(20); err != nil {
		t.Fatalf("AllocMem after free: %v", err)
	}
}

func TestMemDeviceOOMOnlyAffectsRequester(t *testing.T) {
	_, d := newDev(t, DeviceConfig{MemBytes: 100})
	a := mustClient(t, d, ClientConfig{Name: "a"})
	b := mustClient(t, d, ClientConfig{Name: "b"})
	if err := a.AllocMem(80); err != nil {
		t.Fatalf("a.AllocMem: %v", err)
	}
	if err := b.AllocMem(30); !errors.Is(err, ErrDeviceOOM) {
		t.Fatalf("b.AllocMem = %v, want ErrDeviceOOM", err)
	}
	if a.MemUsed() != 80 || d.MemUsed() != 80 {
		t.Fatal("failed allocation perturbed accounting")
	}
}

func TestFreeMemClamps(t *testing.T) {
	_, d := newDev(t, DeviceConfig{MemBytes: 100})
	c := mustClient(t, d, ClientConfig{Name: "x"})
	c.AllocMem(10)
	c.FreeMem(50)
	if c.MemUsed() != 0 || d.MemUsed() != 0 {
		t.Fatalf("MemUsed = %d/%d, want 0/0", c.MemUsed(), d.MemUsed())
	}
}

func TestDestroyAbortsKernelsAndFreesMemory(t *testing.T) {
	eng, d := newDev(t, DeviceConfig{})
	c := mustClient(t, d, ClientConfig{Name: "x"})
	c.AllocMem(1 << 20)
	var errs []error
	for i := 0; i < 2; i++ {
		c.Launch(&KernelSpec{Name: "k", Duration: time.Hour}, func(err error) {
			errs = append(errs, err)
		})
	}
	eng.RunUntil(time.Second)
	c.Destroy()
	if d.MemUsed() != 0 {
		t.Fatalf("device mem after destroy = %d, want 0", d.MemUsed())
	}
	if len(errs) != 2 {
		t.Fatalf("got %d abort callbacks, want 2", len(errs))
	}
	for _, err := range errs {
		if !errors.Is(err, ErrKernelAborted) {
			t.Fatalf("abort err = %v, want ErrKernelAborted", err)
		}
	}
	if err := c.AllocMem(1); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("AllocMem after destroy = %v, want ErrClientClosed", err)
	}
	if err := c.Launch(&KernelSpec{Name: "k", Duration: time.Second}, nil); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Launch after destroy = %v, want ErrClientClosed", err)
	}
	eng.MustDrain(100) // stale completion timers drain harmlessly
}

func TestDestroyReleasesCapacityToSurvivors(t *testing.T) {
	eng, d := newDev(t, DeviceConfig{Policy: PolicyMPS})
	train := mustClient(t, d, ClientConfig{Name: "train"})
	side := mustClient(t, d, ClientConfig{Name: "hog"})
	side.Launch(&KernelSpec{Name: "hog", Duration: time.Hour, Demand: 1, Weight: 4}, nil)
	var trainDone time.Duration
	train.Launch(&KernelSpec{Name: "fp", Duration: time.Second}, func(error) { trainDone = eng.Now() })
	eng.RunUntil(time.Second) // train at rate 0.2: 0.2 work done
	side.Destroy()
	eng.MustDrain(100)
	// Remaining 0.8 work at full rate: finishes at 1.8s.
	if math.Abs(trainDone.Seconds()-1.8) > 1e-3 {
		t.Fatalf("train done at %v, want ~1.8s", trainDone)
	}
}

func TestExecBlocksProcess(t *testing.T) {
	eng := simtime.NewVirtual()
	d := NewDevice(eng, DeviceConfig{})
	rt := simproc.NewRuntime(eng)
	c := mustClient(t, d, ClientConfig{Name: "task"})
	var doneAt time.Duration
	rt.Spawn("task", func(p *simproc.Process) error {
		if err := c.Exec(p, &KernelSpec{Name: "step", Duration: 2 * time.Second}); err != nil {
			return err
		}
		doneAt = p.Now()
		return nil
	})
	eng.MustDrain(100)
	if doneAt != 2*time.Second {
		t.Fatalf("Exec returned at %v, want 2s", doneAt)
	}
}

func TestExecAbortReturnsError(t *testing.T) {
	eng := simtime.NewVirtual()
	d := NewDevice(eng, DeviceConfig{})
	rt := simproc.NewRuntime(eng)
	c := mustClient(t, d, ClientConfig{Name: "task"})
	var got error
	rt.Spawn("task", func(p *simproc.Process) error {
		got = c.Exec(p, &KernelSpec{Name: "step", Duration: time.Hour})
		return nil
	})
	eng.Schedule(time.Second, "destroy", func() { c.Destroy() })
	eng.MustDrain(100)
	if !errors.Is(got, ErrKernelAborted) {
		t.Fatalf("Exec = %v, want ErrKernelAborted", got)
	}
}

func TestDuplicateClientNameRejected(t *testing.T) {
	_, d := newDev(t, DeviceConfig{})
	mustClient(t, d, ClientConfig{Name: "x"})
	if _, err := d.NewClient(ClientConfig{Name: "x"}); err == nil {
		t.Fatal("duplicate client accepted")
	}
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	eng, d := newDev(t, DeviceConfig{Policy: PolicyMPS})
	for i := 0; i < 5; i++ {
		c := mustClient(t, d, ClientConfig{Name: string(rune('a' + i))})
		for j := 0; j < 3; j++ {
			dur := time.Duration(100+i*37+j*61) * time.Millisecond
			c.Launch(&KernelSpec{Name: "k", Duration: dur, Demand: 0.2 + 0.19*float64(i), Weight: 0.1 + 0.8*float64(j)}, nil)
		}
	}
	eng.MustDrain(10000)
	for _, p := range d.Occupancy().Points() {
		if p.V > 1.0+1e-6 {
			t.Fatalf("occupancy %v at %v exceeds capacity", p.V, p.T)
		}
	}
	if d.KernelsCompleted() != 15 {
		t.Fatalf("KernelsCompleted = %d, want 15", d.KernelsCompleted())
	}
}

func TestWorkConservation(t *testing.T) {
	// All submitted work completes, and the occupancy integral equals the
	// total work (SM-seconds in = SM-seconds out).
	eng, d := newDev(t, DeviceConfig{Policy: PolicyMPS})
	var expected float64
	for i := 0; i < 4; i++ {
		c := mustClient(t, d, ClientConfig{Name: string(rune('a' + i))})
		for j := 0; j < 4; j++ {
			dur := time.Duration(50+i*13+j*29) * time.Millisecond
			demand := 0.25 + 0.2*float64(i)
			expected += demand * dur.Seconds()
			c.Launch(&KernelSpec{Name: "k", Duration: dur, Demand: demand}, nil)
		}
	}
	eng.MustDrain(10000)
	if math.Abs(d.WorkDone()-expected) > 1e-9 {
		t.Fatalf("WorkDone = %v, want %v", d.WorkDone(), expected)
	}
	integral := d.Occupancy().Integrate(0, eng.Now()+time.Second)
	if math.Abs(integral-expected) > 1e-3 {
		t.Fatalf("occupancy integral = %v, want ~%v", integral, expected)
	}
}

func BenchmarkKernelChurn(b *testing.B) {
	eng := simtime.NewVirtual()
	d := NewDevice(eng, DeviceConfig{})
	a, _ := d.NewClient(ClientConfig{Name: "a"})
	c, _ := d.NewClient(ClientConfig{Name: "b"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Launch(&KernelSpec{Name: "k", Duration: time.Millisecond, Demand: 0.5}, nil)
		c.Launch(&KernelSpec{Name: "k", Duration: time.Millisecond, Demand: 0.7}, nil)
		if i%256 == 255 {
			eng.Drain(0)
		}
	}
	eng.Drain(0)
}

func TestResidencyTaxSlowsKernelsWhenCoResident(t *testing.T) {
	eng, d := newDev(t, DeviceConfig{ResidencyTax: 0.01})
	train := mustClient(t, d, ClientConfig{Name: "train"})
	side := mustClient(t, d, ClientConfig{Name: "side"})
	// Side task resident (memory only, no kernels).
	if err := side.AllocMem(1 << 30); err != nil {
		t.Fatal(err)
	}
	var doneAt time.Duration
	train.Launch(&KernelSpec{Name: "fp", Duration: time.Second}, func(error) { doneAt = eng.Now() })
	eng.MustDrain(100)
	want := 1.01 // 1s work at rate 1/1.01
	if math.Abs(doneAt.Seconds()-want) > 1e-6 {
		t.Fatalf("taxed kernel finished at %v, want ~%vs", doneAt, want)
	}
}

func TestResidencyTaxNotAppliedSolo(t *testing.T) {
	eng, d := newDev(t, DeviceConfig{ResidencyTax: 0.01})
	train := mustClient(t, d, ClientConfig{Name: "train"})
	var doneAt time.Duration
	train.Launch(&KernelSpec{Name: "fp", Duration: time.Second}, func(error) { doneAt = eng.Now() })
	eng.MustDrain(100)
	if doneAt != time.Second {
		t.Fatalf("solo kernel finished at %v, want 1s (no tax)", doneAt)
	}
}
