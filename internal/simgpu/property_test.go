package simgpu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"freeride/internal/simtime"
)

// Property: for arbitrary random workloads across clients and policies, the
// scheduler (a) completes every kernel, (b) conserves work, (c) never
// exceeds device capacity, and (d) preserves per-client FIFO order.
func TestSchedulerRandomWorkloadInvariants(t *testing.T) {
	f := func(seed int64, policyRaw, clientsRaw, kernelsRaw uint8, capRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		policy := PolicyMPS
		if policyRaw%2 == 1 {
			policy = PolicyTimeSlice
		}
		capacity := 0.25 + float64(capRaw%4)*0.25
		eng := simtime.NewVirtual()
		d := NewDevice(eng, DeviceConfig{Policy: policy, Capacity: capacity})

		nClients := int(clientsRaw%4) + 1
		nKernels := int(kernelsRaw%12) + 1
		var expected float64
		type record struct {
			client int
			seq    int
		}
		var completions []record
		for c := 0; c < nClients; c++ {
			weight := 0.0
			if rng.Intn(2) == 0 {
				weight = 0.5 + 2*rng.Float64()
			}
			cl, err := d.NewClient(ClientConfig{
				Name:   string(rune('a' + c)),
				Weight: weight,
			})
			if err != nil {
				return false
			}
			for k := 0; k < nKernels; k++ {
				c, k := c, k
				dur := time.Duration(1+rng.Intn(400)) * time.Millisecond
				demand := 0.1 + 0.9*rng.Float64()
				spec := &KernelSpec{
					Name:     "k",
					Duration: dur,
					Demand:   demand,
					Weight:   0.1 + 3*rng.Float64(),
				}
				expected += demand * dur.Seconds()
				// Stagger launches through time, keeping each client's
				// launch order aligned with its sequence numbers (FIFO is
				// defined over launch order).
				delay := time.Duration(k)*50*time.Millisecond +
					time.Duration(rng.Intn(40))*time.Millisecond
				eng.Schedule(delay, "launch", func() {
					_ = cl.Launch(spec, func(err error) {
						if err == nil {
							completions = append(completions, record{client: c, seq: k})
						}
					})
				})
			}
		}
		eng.Drain(5_000_000)

		// (a) all kernels completed
		if int(d.KernelsCompleted()) != nClients*nKernels {
			return false
		}
		// (b) work conservation
		if math.Abs(d.WorkDone()-expected) > 1e-6 {
			return false
		}
		// (c) capacity never exceeded (small epsilon for float noise)
		for _, p := range d.Occupancy().Points() {
			if p.V > capacity+1e-6 {
				return false
			}
		}
		// (d) FIFO within each client
		lastSeq := make([]int, nClients)
		for i := range lastSeq {
			lastSeq[i] = -1
		}
		for _, r := range completions {
			if r.seq != lastSeq[r.client]+1 {
				return false
			}
			lastSeq[r.client] = r.seq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: memory accounting never goes negative or above capacity under
// random alloc/free sequences, and client limits hold exactly.
func TestMemoryAccountingProperty(t *testing.T) {
	f := func(seed int64, limRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := simtime.NewVirtual()
		total := int64(1 << 30)
		limit := int64(limRaw%200+28) << 20
		d := NewDevice(eng, DeviceConfig{MemBytes: total})
		a, _ := d.NewClient(ClientConfig{Name: "a", MemLimitBytes: limit})
		b, _ := d.NewClient(ClientConfig{Name: "b"})
		for i := 0; i < 200; i++ {
			n := int64(rng.Intn(64<<20) + 1)
			cl := a
			if rng.Intn(2) == 0 {
				cl = b
			}
			if rng.Intn(3) == 0 {
				cl.FreeMem(n)
			} else {
				_ = cl.AllocMem(n)
			}
			if a.MemUsed() < 0 || b.MemUsed() < 0 {
				return false
			}
			if a.MemUsed() > limit {
				return false
			}
			if d.MemUsed() != a.MemUsed()+b.MemUsed() {
				return false
			}
			if d.MemUsed() > total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSliceClientWeighting(t *testing.T) {
	// A weight-2 training context gets 2/3 of the device under
	// time-slicing against a weight-1 side task.
	eng := simtime.NewVirtual()
	d := NewDevice(eng, DeviceConfig{Policy: PolicyTimeSlice})
	train, _ := d.NewClient(ClientConfig{Name: "train", Weight: 2})
	side, _ := d.NewClient(ClientConfig{Name: "side"})
	train.Launch(&KernelSpec{Name: "fp", Duration: time.Second, Demand: 1}, nil)
	side.Launch(&KernelSpec{Name: "s", Duration: time.Second, Demand: 1}, nil)
	eng.RunUntil(100 * time.Millisecond)
	got := train.OccTrace().At(50 * time.Millisecond)
	if math.Abs(got-2.0/3.0) > 1e-9 {
		t.Fatalf("train share = %v, want 2/3", got)
	}
	eng.Drain(0)
}

func TestPolicyString(t *testing.T) {
	if PolicyMPS.String() != "mps" || PolicyTimeSlice.String() != "timeslice" {
		t.Fatal("Policy.String mismatch")
	}
}
