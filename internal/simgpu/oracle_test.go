package simgpu

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"freeride/internal/simtime"
	"freeride/internal/trace"
)

// oracleRig is one arm of the rebalance differential: a device (incremental
// or forced-full) plus the completion log its workload accumulates.
type oracleRig struct {
	eng     *simtime.Virtual
	dev     *Device
	clients []*Client
	// completions logs (client, seq, engine time, error'd) per completion,
	// in delivery order.
	completions []completionRec
}

type completionRec struct {
	client  int
	seq     int
	at      time.Duration
	aborted bool
}

// buildOracleWorkload replays one seeded random workload — staggered kernel
// launches with mixed demands/weights, memory traffic that toggles the
// ResidencyTax ≥2-resident predicate, and a mid-run client Destroy — onto a
// rig. The schedule depends only on the seed, never on the rig, so both arms
// see identical stimulus.
func buildOracleWorkload(t *testing.T, seed int64, full bool) *oracleRig {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	policy := PolicyMPS
	if rng.Intn(2) == 1 {
		policy = PolicyTimeSlice
	}
	cfg := DeviceConfig{
		Name:          "oracle",
		Policy:        policy,
		Capacity:      0.25 + float64(rng.Intn(4))*0.25,
		ResidencyTax:  DefaultResidencyTax, // exercised whenever ≥2 clients are resident
		MemBytes:      1 << 30,
		FullRebalance: full,
	}
	r := &oracleRig{eng: simtime.NewVirtual()}
	r.dev = NewDevice(r.eng, cfg)

	nClients := rng.Intn(3) + 2
	nKernels := rng.Intn(10) + 2
	for c := 0; c < nClients; c++ {
		weight := 0.0
		if rng.Intn(2) == 0 {
			weight = 0.5 + 2*rng.Float64()
		}
		cl, err := r.dev.NewClient(ClientConfig{
			Name:   string(rune('a' + c)),
			Weight: weight,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.clients = append(r.clients, cl)
	}
	for c, cl := range r.clients {
		c, cl := c, cl
		// Some clients run a self-loop: the completion callback immediately
		// relaunches the next kernel, the shape that exercises the
		// completion→relaunch fusion window (folded on the incremental arm,
		// never opened on the full oracle) and the share cache's steady
		// hit/miss interleavings — sometimes with an identical spec
		// (fingerprint hit), sometimes alternating two specs (the two-way
		// cache), sometimes with a fresh random spec (guaranteed miss).
		if rng.Intn(2) == 0 {
			loops := nKernels
			specs := [2]KernelSpec{{
				Name:     "loop0",
				Duration: time.Duration(1+rng.Intn(40)) * time.Millisecond,
				Demand:   0.1 + 0.9*rng.Float64(),
				Weight:   0.1 + 3*rng.Float64(),
			}, {
				Name:     "loop1",
				Duration: time.Duration(1+rng.Intn(40)) * time.Millisecond,
				Demand:   0.1 + 0.9*rng.Float64(),
				Weight:   0.1 + 3*rng.Float64(),
			}}
			mutate := rng.Intn(3) == 0
			var relaunch func(err error)
			n := 0
			relaunch = func(err error) {
				r.completions = append(r.completions, completionRec{
					client: c, seq: n, at: r.eng.Now(), aborted: err != nil,
				})
				if err != nil || n >= loops {
					return
				}
				n++
				spec := specs[n%2]
				if mutate && n%3 == 0 {
					spec.Demand = 0.1 + 0.8*float64(n%7)/7
				}
				_ = cl.Launch(&spec, relaunch)
			}
			r.eng.Schedule(time.Duration(rng.Intn(30))*time.Millisecond, "loop-start", func() {
				_ = cl.Launch(&specs[0], relaunch)
			})
			continue
		}
		for k := 0; k < nKernels; k++ {
			k := k
			spec := &KernelSpec{
				Name:     "k",
				Duration: time.Duration(1+rng.Intn(300)) * time.Millisecond,
				Demand:   0.1 + 0.9*rng.Float64(),
				Weight:   0.1 + 3*rng.Float64(),
			}
			delay := time.Duration(k)*40*time.Millisecond +
				time.Duration(rng.Intn(30))*time.Millisecond
			r.eng.Schedule(delay, "launch", func() {
				_ = cl.Launch(spec, func(err error) {
					r.completions = append(r.completions, completionRec{
						client: c, seq: k, at: r.eng.Now(), aborted: err != nil,
					})
				})
			})
		}
		// Memory traffic toggles the residency predicate mid-run: an
		// allocation makes an otherwise idle client resident (arming the
		// ≥2-resident tax), the free disarms it again.
		if rng.Intn(2) == 0 {
			amt := int64(rng.Intn(1<<20) + 1)
			at := time.Duration(rng.Intn(400)) * time.Millisecond
			r.eng.Schedule(at, "mem", func() { _ = cl.AllocMem(amt) })
			r.eng.Schedule(at+time.Duration(rng.Intn(400))*time.Millisecond, "mem-free",
				func() { cl.FreeMem(amt) })
		}
	}
	// Destroy one client mid-run: its in-flight kernel aborts and the
	// survivors rebalance.
	victim := rng.Intn(nClients)
	r.eng.Schedule(time.Duration(100+rng.Intn(300))*time.Millisecond, "destroy",
		func() { r.clients[victim].Destroy() })

	r.eng.Drain(5_000_000)
	return r
}

// samePoints asserts two traces are float-exact (same instants, bitwise
// equal values).
func samePoints(t *testing.T, seed int64, label string, a, b *trace.Series) {
	t.Helper()
	pa, pb := a.Points(), b.Points()
	if len(pa) != len(pb) {
		t.Fatalf("seed %d: %s: %d vs %d trace points", seed, label, len(pa), len(pb))
	}
	for i := range pa {
		if pa[i].T != pb[i].T || math.Float64bits(pa[i].V) != math.Float64bits(pb[i].V) {
			t.Fatalf("seed %d: %s: point %d diverged: (%v, %x) vs (%v, %x)",
				seed, label, i, pa[i].T, math.Float64bits(pa[i].V), pb[i].T, math.Float64bits(pb[i].V))
		}
	}
}

// TestIncrementalVsFullRebalanceFloatExact is the scheduler differential
// oracle: the incremental rebalance (transition-maintained running set and
// residency count, in-place completion re-arms) must reproduce the original
// full recompute float-exactly — identical completion times and delivery
// order, bitwise-identical SM allocation traces (which expose every
// intermediate alloc value, including the ResidencyTax scaling), identical
// work accounting — across random workloads over both policies, memory
// traffic and mid-run Destroys.
func TestIncrementalVsFullRebalanceFloatExact(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		inc := buildOracleWorkload(t, seed, false)
		ful := buildOracleWorkload(t, seed, true)

		if len(inc.completions) != len(ful.completions) {
			t.Fatalf("seed %d: %d vs %d completions", seed, len(inc.completions), len(ful.completions))
		}
		for i := range inc.completions {
			if inc.completions[i] != ful.completions[i] {
				t.Fatalf("seed %d: completion %d diverged: %+v vs %+v",
					seed, i, inc.completions[i], ful.completions[i])
			}
		}
		if inc.eng.Now() != ful.eng.Now() {
			t.Fatalf("seed %d: final clocks diverged: %v vs %v", seed, inc.eng.Now(), ful.eng.Now())
		}
		if a, b := inc.dev.KernelsCompleted(), ful.dev.KernelsCompleted(); a != b {
			t.Fatalf("seed %d: kernels completed %d vs %d", seed, a, b)
		}
		if a, b := inc.dev.WorkDone(), ful.dev.WorkDone(); math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("seed %d: work done %v vs %v (not bitwise equal)", seed, a, b)
		}
		if a, b := inc.dev.MemUsed(), ful.dev.MemUsed(); a != b {
			t.Fatalf("seed %d: memory %d vs %d", seed, a, b)
		}
		// The occupancy traces record every kernel's allocation at every
		// rebalance instant: bitwise equality here means every intermediate
		// share — water-filling, time-slicing and tax-scaled — matched.
		samePoints(t, seed, "device occ", inc.dev.Occupancy(), ful.dev.Occupancy())
		samePoints(t, seed, "device mem", inc.dev.MemTrace(), ful.dev.MemTrace())
		for i := range inc.clients {
			samePoints(t, seed, "client occ", inc.clients[i].OccTrace(), ful.clients[i].OccTrace())
			samePoints(t, seed, "client mem", inc.clients[i].MemTrace(), ful.clients[i].MemTrace())
		}
	}
}

// TestLaunchCompleteAllocFree pins the incremental rebalance hot path with
// two concurrently running clients — the shape that exercises the running-
// set insert/remove/replace and residency bookkeeping on every event —
// at 0 allocs/op once pools are warm.
func TestLaunchCompleteAllocFree(t *testing.T) {
	eng := simtime.NewVirtual()
	dev := NewDevice(eng, DeviceConfig{Name: "gpu", NoTraces: true})
	specA := &KernelSpec{Name: "ka", Duration: 3 * time.Microsecond, Demand: 0.6, Weight: 0.6}
	specB := &KernelSpec{Name: "kb", Duration: 5 * time.Microsecond, Demand: 0.7, Weight: 0.9}
	a, err := dev.NewClient(ClientConfig{Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := dev.NewClient(ClientConfig{Name: "b"})
	if err != nil {
		t.Fatal(err)
	}
	var relaunchA, relaunchB func(error)
	relaunchA = func(error) { _ = a.Launch(specA, relaunchA) }
	relaunchB = func(error) { _ = b.Launch(specB, relaunchB) }
	relaunchA(nil)
	relaunchB(nil)
	for i := 0; i < 64; i++ {
		eng.Step()
	}
	allocs := testing.AllocsPerRun(2000, func() {
		eng.Step()
	})
	if allocs != 0 {
		t.Fatalf("two-client launch/complete cycle allocates %.2f objects/op, want 0", allocs)
	}
}
