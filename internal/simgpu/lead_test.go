package simgpu

import (
	"reflect"
	"testing"
	"time"

	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

// runLeadArm replays one fixed workload — a serial host-lead step loop plus
// a background client launching kernels and moving memory at scheduled
// instants — and returns the loop's completion timestamps. fused selects
// ExecLeadThen (one event per step); the control arm dispatches the same
// steps as the classic sleep(lead) + ExecThen pair. The stimulus depends
// only on the arm's call shape, never on its timing feedback.
func runLeadArm(t *testing.T, fused bool, n int) ([]time.Duration, *Device) {
	t.Helper()
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	dev := NewDevice(eng, DeviceConfig{
		Name:         "gpu",
		ResidencyTax: DefaultResidencyTax,
		MemBytes:     1 << 30,
	})
	main, err := dev.NewClient(ClientConfig{Name: "main"})
	if err != nil {
		t.Fatal(err)
	}
	bg, err := dev.NewClient(ClientConfig{Name: "bg"})
	if err != nil {
		t.Fatal(err)
	}
	spec := &KernelSpec{Name: "step", Duration: 4 * time.Millisecond, Demand: 0.7, Weight: 0.5}
	const lead = 3 * time.Millisecond
	var times []time.Duration
	procs.SpawnInline("loop", func(p *simproc.Process) {
		var launch func()
		var k func(any)
		count := 0
		launch = func() {
			if fused {
				main.ExecLeadThen(p, spec, lead, k)
			} else {
				p.SleepThen(lead, func(any) { main.ExecThen(p, spec, k) })
			}
		}
		k = func(res any) {
			if res != nil {
				t.Errorf("step %d failed: %v", count, res)
				p.Exit(res.(error))
				return
			}
			times = append(times, eng.Now())
			count++
			if count >= n {
				p.Exit(nil)
				return
			}
			launch()
		}
		launch()
	})
	// Background perturbation: overlapping kernels force mid-lead
	// rebalances (hypothesis refreshes), memory traffic toggles the
	// ≥2-resident tax predicate while leads are pending.
	for i := 0; i < n; i++ {
		i := i
		eng.Schedule(time.Duration(2+5*i)*time.Millisecond, "bg-kernel", func() {
			_ = bg.Launch(&KernelSpec{
				Name:     "bg",
				Duration: time.Duration(1+i%3) * time.Millisecond,
				Demand:   0.5,
				Weight:   1,
			}, func(error) {})
		})
	}
	eng.Schedule(5*time.Millisecond, "bg-mem", func() { _ = bg.AllocMem(1 << 20) })
	eng.Schedule(29*time.Millisecond, "bg-mem-free", func() { bg.FreeMem(1 << 20) })
	eng.RunUntil(2 * time.Second)
	return times, dev
}

// TestExecLeadThenMatchesSleepExec is the simgpu-level fusion differential:
// under identical background stimulus the fused host-lead launch must
// complete every step at exactly the instant of the unfused sleep+launch
// pair. Holds on every device flavour — a non-lead-capable device (the
// forced full-recompute oracle) answers ExecLeadThen with the unfused shape
// itself, so both arms trivially coincide there too.
func TestExecLeadThenMatchesSleepExec(t *testing.T) {
	const steps = 12
	fusedTimes, fdev := runLeadArm(t, true, steps)
	plainTimes, pdev := runLeadArm(t, false, steps)
	if len(fusedTimes) != steps {
		t.Fatalf("fused arm completed %d steps, want %d", len(fusedTimes), steps)
	}
	if !reflect.DeepEqual(fusedTimes, plainTimes) {
		t.Errorf("completion instants diverge:\nfused   %v\nunfused %v", fusedTimes, plainTimes)
	}
	if a, b := fdev.WorkDone(), pdev.WorkDone(); a != b {
		t.Errorf("work done diverges: fused %v, unfused %v", a, b)
	}
	if a, b := fdev.KernelsCompleted(), pdev.KernelsCompleted(); a != b {
		t.Errorf("kernels completed diverge: fused %d, unfused %d", a, b)
	}
}

// newLeadRig is a single-client device for the hold/release boundary tests.
func newLeadRig(t *testing.T) (*simtime.Virtual, *simproc.Runtime, *Device, *Client) {
	t.Helper()
	eng := simtime.NewVirtual()
	procs := simproc.NewRuntime(eng)
	dev := NewDevice(eng, DeviceConfig{Name: "gpu", NoTraces: true})
	c, err := dev.NewClient(ClientConfig{Name: "task"})
	if err != nil {
		t.Fatal(err)
	}
	return eng, procs, dev, c
}

// TestHoldLeadFreezesHostPhase pins the Stop/Pause boundary for a lead still
// in its host phase: HoldLead freezes the remaining lead, the kernel never
// runs while held, and ReleaseLead restarts the kernel clock at the release
// instant — exactly the deferred sleep-wake a stopped unfused process would
// observe.
func TestHoldLeadFreezesHostPhase(t *testing.T) {
	eng, procs, dev, c := newLeadRig(t)
	skipIfOracleForced(t, dev, false)
	spec := &KernelSpec{Name: "k", Duration: 5 * time.Millisecond, Demand: 1, Weight: 1}
	doneAt := time.Duration(-1)
	procs.SpawnInline("t", func(p *simproc.Process) {
		c.ExecLeadThen(p, spec, 10*time.Millisecond, func(res any) {
			if res != nil {
				t.Errorf("kernel failed: %v", res)
			}
			doneAt = eng.Now()
			p.Exit(nil)
		})
	})
	eng.RunUntil(4 * time.Millisecond) // inside the host phase [0, 10ms)
	c.HoldLead()
	eng.RunUntil(20 * time.Millisecond)
	if doneAt != -1 {
		t.Fatalf("kernel completed at %v while the lead was held", doneAt)
	}
	c.ReleaseLead() // at 20ms: leadUntil pushes to the release instant
	eng.RunUntil(40 * time.Millisecond)
	if want := 25 * time.Millisecond; doneAt != want {
		t.Fatalf("kernel completed at %v, want %v (release + duration)", doneAt, want)
	}
}

// TestHoldLeadMaturesInFlightKernel pins the other side of the boundary: a
// lead whose host phase already elapsed is an in-flight asynchronous kernel;
// HoldLead matures it instead of freezing it and it completes on time, as
// the paper's asynchronous kernels run through a SIGTSTP (§5).
func TestHoldLeadMaturesInFlightKernel(t *testing.T) {
	eng, procs, dev, c := newLeadRig(t)
	skipIfOracleForced(t, dev, false)
	spec := &KernelSpec{Name: "k", Duration: 5 * time.Millisecond, Demand: 1, Weight: 1}
	doneAt := time.Duration(-1)
	procs.SpawnInline("t", func(p *simproc.Process) {
		c.ExecLeadThen(p, spec, 3*time.Millisecond, func(res any) {
			doneAt = eng.Now()
			p.Exit(nil)
		})
	})
	eng.RunUntil(4 * time.Millisecond) // past leadUntil = 3ms
	c.HoldLead()                       // matures the due lead; no freeze
	eng.RunUntil(20 * time.Millisecond)
	if want := 8 * time.Millisecond; doneAt != want {
		t.Fatalf("kernel completed at %v, want %v (hold must not stall an in-flight kernel)", doneAt, want)
	}
}

// TestExecLeadThenFaultDelivery pins the fault boundary: an armed kernel
// fault is consumed at launch but delivered when the host phase ends — the
// instant the unfused arm's launch would consume and deliver it. Runs on
// every device flavour (the non-lead fallback consumes at the same instant).
func TestExecLeadThenFaultDelivery(t *testing.T) {
	eng, procs, dev, c := newLeadRig(t)
	spec := &KernelSpec{Name: "k", Duration: 5 * time.Millisecond, Demand: 1, Weight: 1}
	dev.InjectKernelFault("")
	errAt := time.Duration(-1)
	var gotErr error
	procs.SpawnInline("t", func(p *simproc.Process) {
		c.ExecLeadThen(p, spec, 7*time.Millisecond, func(res any) {
			errAt = eng.Now()
			gotErr, _ = res.(error)
			p.Exit(nil)
		})
	})
	eng.RunUntil(50 * time.Millisecond)
	if want := 7 * time.Millisecond; errAt != want {
		t.Fatalf("fault delivered at %v, want %v (the host-phase boundary)", errAt, want)
	}
	if gotErr == nil {
		t.Fatal("injected fault not delivered as an error")
	}
	if got := dev.InjectedKernelFaults(); got != 1 {
		t.Fatalf("InjectedKernelFaults = %d, want 1", got)
	}
}

// TestExecLeadThenAllocFree pins the tentpole guarantee for the fused step
// dispatch: a steady host-lead self-loop — completion via the chained wake,
// lead insert/arm/mature, the completion-hypothesis water-fill in scratch
// space — runs at 0 allocs/op.
func TestExecLeadThenAllocFree(t *testing.T) {
	eng, dev, a, b := newTwoClientRig(t)
	skipIfOracleForced(t, dev, false)
	procs := simproc.NewRuntime(eng)
	specA := &KernelSpec{Name: "ka", Duration: 3 * time.Microsecond, Demand: 0.6, Weight: 0.6}
	specB := &KernelSpec{Name: "kb", Duration: 5 * time.Microsecond, Demand: 0.7, Weight: 0.9}
	start := func(c *Client, spec *KernelSpec, lead time.Duration) func(p *simproc.Process) {
		return func(p *simproc.Process) {
			var k func(any)
			k = func(res any) {
				if res != nil {
					p.Exit(res.(error))
					return
				}
				c.ExecLeadThen(p, spec, lead, k)
			}
			c.ExecLeadThen(p, spec, lead, k)
		}
	}
	procs.SpawnInline("loop-a", start(a, specA, 2*time.Microsecond))
	procs.SpawnInline("loop-b", start(b, specB, 4*time.Microsecond))
	for i := 0; i < 64; i++ {
		eng.Step()
	}
	allocs := testing.AllocsPerRun(2000, func() {
		eng.Step()
	})
	if allocs != 0 {
		t.Fatalf("fused ExecLeadThen dispatch allocates %.2f objects/op, want 0", allocs)
	}
}
