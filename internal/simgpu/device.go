// Package simgpu models GPU devices as discrete-event resources: streaming
// multiprocessor (SM) capacity shared between client processes' kernels, and
// device memory with per-client limits.
//
// It is the stand-in for the paper's RTX 6000 Ada / RTX 3080 hardware and
// for the CUDA MPS layer (paper §4.5): per-client memory caps reproduce
// MPS's memory protection (the offending client alone sees the OOM), and the
// two sharing policies reproduce the co-location baselines —
//
//   - PolicyMPS: weighted space-sharing. Concurrent kernels from different
//     clients each receive an SM fraction proportional to their scheduling
//     weight (their "thread-block pressure"), capped by their demand.
//     Compute-hungry kernels with large weights (Graph SGD) squeeze the
//     training kernels hard; light kernels barely register. This is what
//     makes the paper's MPS-baseline overheads span 9.5%–231%.
//   - PolicyTimeSlice: naive co-location without MPS. CUDA contexts
//     time-slice the whole device, so with n active clients each runs at
//     1/n of its demand — the paper's ~45–64% naive overhead.
//
// Kernels within one client always serialize (one stream), matching both the
// pipeline engine's op stream and the side tasks' step loop.
package simgpu

import (
	"errors"
	"fmt"
	"math"

	"freeride/internal/oracle"
	"freeride/internal/simtime"
	"freeride/internal/trace"
)

// Sharing policies.
type Policy int

const (
	// PolicyMPS is CUDA-MPS-style weighted space sharing.
	PolicyMPS Policy = iota + 1
	// PolicyTimeSlice is naive context time-slicing.
	PolicyTimeSlice
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyMPS:
		return "mps"
	case PolicyTimeSlice:
		return "timeslice"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Errors reported by the device.
var (
	// ErrClientOOM means an allocation exceeded the client's MPS memory
	// limit; only the offending client is affected.
	ErrClientOOM = errors.New("simgpu: client memory limit exceeded")
	// ErrDeviceOOM means an allocation exceeded physical device memory.
	ErrDeviceOOM = errors.New("simgpu: device out of memory")
	// ErrKernelAborted means the kernel's client was destroyed mid-flight.
	ErrKernelAborted = errors.New("simgpu: kernel aborted")
	// ErrClientClosed means an operation was attempted on a destroyed client.
	ErrClientClosed = errors.New("simgpu: client destroyed")
	// ErrInjectedFault is the completion error delivered by an armed
	// kernel fault (simfault's fail-kernel). The manager's recovery path
	// recognizes it by its message, which therefore crosses RPC exit
	// reports verbatim — keep InjectedFaultMsg in sync.
	ErrInjectedFault = errors.New(InjectedFaultMsg)
)

// InjectedFaultMsg is ErrInjectedFault's message; error strings that
// contain it mark an infrastructure fault (recoverable) rather than a task
// failure (terminal).
const InjectedFaultMsg = "simgpu: injected kernel fault"

// minAlloc guards against zero rates from degenerate weights.
const minAlloc = 1e-6

// DeviceConfig describes one GPU.
type DeviceConfig struct {
	Name string
	// MemBytes is physical device memory (e.g. 48 GiB for RTX 6000 Ada).
	MemBytes int64
	// Capacity is aggregate SM throughput; 1.0 = reference GPU
	// (the paper's Server-I RTX 6000 Ada). A slower device (Server-II's
	// RTX 3080) has capacity < 1: kernels take proportionally longer.
	Capacity float64
	// Policy selects the co-location sharing model. Default PolicyMPS.
	Policy Policy
	// ResidencyTax is the fractional slowdown applied to every kernel
	// while two or more client contexts are resident (memory allocated or
	// kernels in flight) under PolicyMPS — the cost of the MPS server
	// multiplexing contexts. It is the mechanism behind FreeRide's
	// residual ~1% training overhead (paper Table 2): merely keeping a
	// side-task context resident is not free. Default 0 (off); the
	// experiment harness uses DefaultResidencyTax.
	ResidencyTax float64
	// NoTraces disables occupancy/memory series recording. Measurement
	// runs that never read the traces (everything except profiling and the
	// figure harnesses) set it: the series otherwise accumulate a point
	// per rebalance for the whole run and dominate allocation volume.
	NoTraces bool
	// FullRebalance forces the original full-recompute scheduler pass
	// (rebalanceFullLocked) on every kernel event instead of the
	// incremental pass that reuses the device's running-set, residency and
	// share caches and fuses same-instant completion→relaunch rebalances.
	// The two are float-exact equivalents; the full pass is kept as the
	// differential-testing oracle for the incremental one.
	FullRebalance bool
	// NoShareCache disables the water-fill share cache: the incremental
	// pass then recomputes the allocation vector on every rebalance, like
	// the full oracle, instead of reusing the converged shares when the
	// running set's fingerprint is unchanged. Cached and recomputed shares
	// are float-exact equivalents; the knob exists for the CI oracle matrix
	// and A/B measurement.
	NoShareCache bool
}

// Oracle-matrix environment overrides: the CI matrix re-runs the whole test
// suite with the differential oracles forced on, so every oracle pair is
// exercised end-to-end per commit, not only in the dedicated suites. The
// parsing lives in the shared resolver (internal/oracle); enforcement stays
// here so every device — including the ones profiling runs build for
// themselves — sees the forced arm.
//
//	FREERIDE_ORACLE_REBALANCE=full  → every device runs rebalanceFullLocked
//	FREERIDE_ORACLE_SHARECACHE=off  → every device skips the share cache
func oracleForceFullRebalance() bool { return oracle.Env().FullRebalance }
func oracleDisableShareCache() bool  { return oracle.Env().NoShareCache }

// DefaultResidencyTax is the calibrated MPS context-multiplexing overhead
// used by the experiment harness.
const DefaultResidencyTax = 0.010

// Device is one simulated GPU.
type Device struct {
	eng simtime.Engine
	cfg DeviceConfig

	// mu guards all device and client state. It is an ownership-regime
	// guard: free while the engine is single-owner (the all-inline grids),
	// a real mutex once goroutine shells or live transports exist.
	mu      simtime.Guard
	clients map[string]*Client
	// order lists clients in creation order: the full-recompute oracle
	// walks it instead of iterating the map (faster, and deterministic).
	order    []*Client
	memUsed  int64
	occ      *trace.Series // total SM allocation over time
	mem      *trace.Series // total memory bytes over time
	kernels  uint64        // completed kernel count
	workDone float64       // completed SM-seconds (at reference speed)

	// running caches the in-flight kernel set (each client's current, in
	// client creation order — the same order the full recompute derives by
	// walking d.order). Kernel launch/completion/abort updates it in place,
	// so the incremental rebalance never walks the client list.
	running []*kernel
	// resident caches how many clients hold GPU state (memory allocated or
	// a kernel in flight) — the ResidencyTax predicate — maintained on
	// every transition instead of recounted per rebalance.
	resident int

	// Water-fill share cache: converged post-tax allocation vectors of
	// recent incremental rebalances, fingerprinted by the running set's
	// shape — per slot the client identity and the weight/demand bits that
	// (with the immutable policy and capacity) fully determine the
	// assignAllocations output — plus the residency-tax predicate. A
	// steady-state co-location rebalance, where a completed kernel is
	// replaced by an identically shaped successor, becomes a fingerprint
	// compare and a copy instead of an iterative water-fill. The cache is
	// two-way (MRU first) because the steady state alternates between two
	// shapes: the set with a completed kernel removed, and the set with its
	// successor launched. Any membership, weight, demand or residency
	// transition changes the fingerprint, so invalidation is implicit in
	// the compare; the cached floats are the exact bits the recompute would
	// produce. shareHits/shareMisses let tests assert the fast path
	// actually engages.
	shares      [2]shareEntry
	shareHits   uint64
	shareMisses uint64

	// fusedFolds counts fusion windows folded into a launch rebalance.
	fusedFolds uint64
	// fusing marks an open completion→relaunch fusion window: the
	// rebalance owed by the last kernel completion has been deferred in the
	// hope that the completion's continuation immediately launches a
	// successor at the same instant, folding both transitions into one
	// pass. Every state-observing or -mutating entry point flushes the
	// window first (flushFusionLocked); completeKernel flushes on return,
	// so a window never outlives its dispatch.
	fusing bool

	// fusable gates the fusion window: only virtual engines qualify (no
	// wall-clock time can pass between a completion and its continuation's
	// relaunch, which is what makes the fused single rebalance exact), and
	// the full-recompute oracle never fuses.
	fusable bool

	// leads are pending host-lead kernels (ExecLeadThen), ordered by
	// leadUntil: created but not yet runnable, they join the running set
	// lazily at the first device transition at-or-after their lead elapses
	// (matureLeadsLocked). Held leads (HoldLead) are parked off-list.
	leads []*kernel

	// scratch buffers reused across rebalances to keep the hot path
	// allocation-free.
	scratchRun   []*kernel
	scratchSlots []allocSlot
	// scratchAllocs saves the running set's true allocations across a lead
	// hypothesis dry run (armLeadLocked).
	scratchAllocs []float64
	// kernelPool recycles kernel structs (and their completion timers and
	// closures) across launches; a device retires millions of kernels per
	// simulated run.
	kernelPool []*kernel

	// Armed kernel fault (simfault's fail-kernel): the next launch by a
	// client whose name starts with faultPrefix completes immediately with
	// faultErr instead of running. One-shot; nil when idle.
	faultErr    error
	faultPrefix string
	// faultsFired counts injected kernel failures delivered.
	faultsFired uint64
}

// NewDevice creates a device on the engine. Zero-valued config fields get
// defaults: 48 GiB memory, capacity 1.0, PolicyMPS.
func NewDevice(eng simtime.Engine, cfg DeviceConfig) *Device {
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 48 << 30
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = 1.0
	}
	if cfg.Policy == 0 {
		cfg.Policy = PolicyMPS
	}
	if cfg.Name == "" {
		cfg.Name = "gpu"
	}
	if oracleForceFullRebalance() {
		cfg.FullRebalance = true
	}
	if oracleDisableShareCache() {
		cfg.NoShareCache = true
	}
	d := &Device{
		eng:     eng,
		cfg:     cfg,
		clients: make(map[string]*Client),
		occ:     trace.NewSeries(cfg.Name + "/sm"),
		mem:     trace.NewSeries(cfg.Name + "/mem"),
	}
	_, virtual := eng.(*simtime.Virtual)
	d.fusable = virtual && !cfg.FullRebalance
	d.mu.Bind(eng)
	return d
}

// Config reports the device configuration after defaulting and oracle-matrix
// environment overrides (for tests that must skip when an oracle is forced).
func (d *Device) Config() DeviceConfig { return d.cfg }

// Name reports the device name.
func (d *Device) Name() string { return d.cfg.Name }

// MemBytes reports physical memory size.
func (d *Device) MemBytes() int64 { return d.cfg.MemBytes }

// MemUsed reports currently allocated memory across all clients.
func (d *Device) MemUsed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.memUsed
}

// MemFree reports unallocated device memory.
func (d *Device) MemFree() int64 { return d.MemBytes() - d.MemUsed() }

// Policy reports the sharing policy.
func (d *Device) Policy() Policy { return d.cfg.Policy }

// Occupancy returns the total-SM-allocation trace.
func (d *Device) Occupancy() *trace.Series { return d.occ }

// MemTrace returns the total-memory trace.
func (d *Device) MemTrace() *trace.Series { return d.mem }

// KernelsCompleted reports how many kernels have finished on this device.
func (d *Device) KernelsCompleted() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.kernels
}

// WorkDone reports completed work in reference-GPU SM-seconds.
func (d *Device) WorkDone() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.workDone
}

// ClientConfig describes a client process's GPU context.
type ClientConfig struct {
	Name string
	// MemLimitBytes is the MPS-imposed memory cap; 0 means unlimited.
	MemLimitBytes int64
	// Weight is the client's default kernel scheduling weight under
	// PolicyMPS; kernels may override it. Zero means "use kernel demand".
	Weight float64
}

// Client is one process's context on a device (one CUDA context / MPS
// client).
type Client struct {
	dev *Device
	cfg ClientConfig

	// guarded by dev.mu:
	closed  bool
	memUsed int64
	current *kernel
	queue   []*kernel
	memTr   *trace.Series
	occTr   *trace.Series
	// orderIdx is the client's index in dev.order, kept current across
	// Destroys; the running-set cache sorts by it.
	orderIdx int
	// resident mirrors the ResidencyTax predicate (memUsed > 0 or a kernel
	// in flight) so transitions can maintain dev.resident in O(1).
	resident bool
}

// NewClient registers a client context on the device.
func (d *Device) NewClient(cfg ClientConfig) (*Client, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("client%d", len(d.clients))
	}
	if _, dup := d.clients[cfg.Name]; dup {
		return nil, fmt.Errorf("simgpu: duplicate client %q on %s", cfg.Name, d.cfg.Name)
	}
	c := &Client{
		dev:      d,
		cfg:      cfg,
		memTr:    trace.NewSeries(d.cfg.Name + "/" + cfg.Name + "/mem"),
		occTr:    trace.NewSeries(d.cfg.Name + "/" + cfg.Name + "/sm"),
		orderIdx: len(d.order),
	}
	d.clients[cfg.Name] = c
	d.order = append(d.order, c)
	return c, nil
}

// --- incremental scheduler caches -----------------------------------------
//
// The running set and the residency count are maintained at every transition
// (launch, completion, Destroy, memory traffic) so the rebalance pass needs
// neither a client-list walk nor a residency recount. rebalanceFullLocked
// ignores both caches and rederives everything — the differential oracle.

// residencyChangedLocked re-evaluates c's residency after any change to its
// memory or kernel state and folds the delta into the device count. Caller
// holds d.mu.
func (d *Device) residencyChangedLocked(c *Client) {
	// A host lead is not resident kernel state: the equivalent unfused
	// client would still be in its host phase with nothing submitted, so
	// the MPS tax predicate must not see it until maturation.
	r := !c.closed && (c.memUsed > 0 || (c.current != nil && !c.current.leading))
	if r != c.resident {
		c.resident = r
		if r {
			d.resident++
		} else {
			d.resident--
		}
	}
}

// runningInsertLocked adds k (its client's new current) to the running set,
// keeping client creation order. Caller holds d.mu.
func (d *Device) runningInsertLocked(k *kernel) {
	i := len(d.running)
	for i > 0 && d.running[i-1].client.orderIdx > k.client.orderIdx {
		i--
	}
	d.running = append(d.running, nil)
	copy(d.running[i+1:], d.running[i:])
	d.running[i] = k
	for j := i; j < len(d.running); j++ {
		d.running[j].runIdx = int32(j)
	}
}

// runningRemoveLocked drops k from the running set. Caller holds d.mu.
func (d *Device) runningRemoveLocked(k *kernel) {
	i := int(k.runIdx)
	copy(d.running[i:], d.running[i+1:])
	last := len(d.running) - 1
	d.running[last] = nil
	d.running = d.running[:last]
	for j := i; j < last; j++ {
		d.running[j].runIdx = int32(j)
	}
	k.runIdx = -1
}

// runningReplaceLocked swaps a completed kernel for its client's promoted
// successor in the same slot (same client, same position). Caller holds d.mu.
func (d *Device) runningReplaceLocked(old, next *kernel) {
	i := old.runIdx
	d.running[i] = next
	next.runIdx = i
	old.runIdx = -1
}

// shareKey is one slot of the share-cache fingerprint: the client identity
// plus the bits of the kernel weight and demand that, with the device's
// immutable policy and capacity, determine its allocation under either
// policy (the client's own weight override is a function of the client
// identity). Clients are never recycled, so pointer identity is exact.
type shareKey struct {
	c    *Client
	w, d uint64
}

// shareKeyOf builds the fingerprint slot for a running kernel.
func shareKeyOf(k *kernel) shareKey {
	return shareKey{
		c: k.client,
		w: math.Float64bits(k.spec.Weight),
		d: math.Float64bits(k.spec.Demand),
	}
}

// shareEntry is one cached (fingerprint, allocation vector) pair.
type shareEntry struct {
	key    []shareKey
	allocs []float64
	taxed  bool
	valid  bool
}

// matches reports whether the entry's fingerprint equals the running set's.
func (e *shareEntry) matches(running []*kernel, taxed bool) bool {
	if !e.valid || e.taxed != taxed || len(e.key) != len(running) {
		return false
	}
	for i, k := range running {
		if e.key[i] != shareKeyOf(k) {
			return false
		}
	}
	return true
}

// shareCacheHitLocked looks the running set up in the two-way cache and, on
// a match, installs the cached post-tax allocation vector (promoting the
// entry to MRU). Caller holds d.mu.
func (d *Device) shareCacheHitLocked(running []*kernel, taxed bool) bool {
	e := &d.shares[0]
	if !e.matches(running, taxed) {
		if !d.shares[1].matches(running, taxed) {
			d.shareMisses++
			return false
		}
		d.shares[0], d.shares[1] = d.shares[1], d.shares[0]
	}
	for i, k := range running {
		k.alloc = d.shares[0].allocs[i]
	}
	d.shareHits++
	return true
}

// shareCacheStoreLocked records the just-computed allocation vector under
// the running set's fingerprint, evicting the LRU entry (whose slices are
// reused). Caller holds d.mu.
func (d *Device) shareCacheStoreLocked(running []*kernel, taxed bool) {
	d.shares[0], d.shares[1] = d.shares[1], d.shares[0]
	e := &d.shares[0]
	key, allocs := e.key[:0], e.allocs[:0]
	for _, k := range running {
		key = append(key, shareKeyOf(k))
		allocs = append(allocs, k.alloc)
	}
	e.key, e.allocs = key, allocs
	e.taxed = taxed
	e.valid = true
}

// ShareCacheStats reports water-fill cache hits and misses (for tests and
// measurement; both zero when the cache is disabled or the device runs the
// full-recompute oracle).
func (d *Device) ShareCacheStats() (hits, misses uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.shareHits, d.shareMisses
}

// FusedFolds reports how many completion→relaunch fusion windows were folded
// into a launch's rebalance (for tests and measurement).
func (d *Device) FusedFolds() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fusedFolds
}

// flushFusionLocked settles an open completion→relaunch fusion window by
// running the deferred rebalance. Called at the top of every device entry
// point that observes or mutates scheduler state — a launch that merely
// queues, memory traffic, Destroy — and by completeKernel after the
// completion delivery returns, so a window never outlives the dispatch that
// opened it. (NewClient needs no flush: a fresh client is neither resident
// nor running, so it cannot interact with the deferred transition.) The
// immediate-launch path folds the window into its own rebalance instead.
// Caller holds d.mu.
func (d *Device) flushFusionLocked() {
	if d.fusing {
		d.fusing = false
		d.rebalanceLocked()
	}
}

// Name reports the client name.
func (c *Client) Name() string { return c.cfg.Name }

// Device returns the owning device.
func (c *Client) Device() *Device { return c.dev }

// MemLimit reports the client's memory cap (0 = unlimited).
func (c *Client) MemLimit() int64 { return c.cfg.MemLimitBytes }

// MemUsed reports the client's current allocation.
func (c *Client) MemUsed() int64 {
	c.dev.mu.Lock()
	defer c.dev.mu.Unlock()
	return c.memUsed
}

// MemTrace returns the client's memory trace.
func (c *Client) MemTrace() *trace.Series { return c.memTr }

// OccTrace returns the client's SM-allocation trace.
func (c *Client) OccTrace() *trace.Series { return c.occTr }

// AllocMem charges n bytes to the client, enforcing the MPS client limit
// and physical capacity. On error nothing is charged.
func (c *Client) AllocMem(n int64) error {
	if n < 0 {
		return fmt.Errorf("simgpu: negative allocation %d", n)
	}
	d := c.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	d.flushFusionLocked()
	d.matureLeadsLocked(nil)
	if c.closed {
		return ErrClientClosed
	}
	if c.cfg.MemLimitBytes > 0 && c.memUsed+n > c.cfg.MemLimitBytes {
		return fmt.Errorf("%w: client %s used %d + %d > limit %d",
			ErrClientOOM, c.cfg.Name, c.memUsed, n, c.cfg.MemLimitBytes)
	}
	if d.memUsed+n > d.cfg.MemBytes {
		return fmt.Errorf("%w: %s used %d + %d > %d",
			ErrDeviceOOM, d.cfg.Name, d.memUsed, n, d.cfg.MemBytes)
	}
	c.memUsed += n
	d.memUsed += n
	d.residencyChangedLocked(c)
	// Residency feeds the pending leads' tax hypotheses.
	d.refreshLeadsLocked()
	if !d.cfg.NoTraces {
		now := d.eng.Now()
		c.memTr.Add(now, float64(c.memUsed))
		d.mem.Add(now, float64(d.memUsed))
	}
	return nil
}

// FreeMem releases n bytes (clamped to the current allocation).
func (c *Client) FreeMem(n int64) {
	d := c.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	d.flushFusionLocked()
	d.matureLeadsLocked(nil)
	if n > c.memUsed {
		n = c.memUsed
	}
	c.memUsed -= n
	d.memUsed -= n
	d.residencyChangedLocked(c)
	d.refreshLeadsLocked()
	if !d.cfg.NoTraces {
		now := d.eng.Now()
		c.memTr.Add(now, float64(c.memUsed))
		d.mem.Add(now, float64(d.memUsed))
	}
}

// Destroy aborts the client's queued and running kernels, frees its memory
// and removes it from the device — the effect of killing the owning process
// (its CUDA context dies with it).
func (c *Client) Destroy() {
	d := c.dev
	d.mu.Lock()
	if c.closed {
		d.mu.Unlock()
		return
	}
	d.flushFusionLocked()
	d.matureLeadsLocked(nil)
	c.closed = true
	aborted := make([]*kernel, 0, len(c.queue)+1)
	if cur := c.current; cur != nil {
		cur.cancelTimer()
		if cur.leading {
			// A pending (or held) lead was never in the running set.
			if !cur.held {
				d.leadsRemoveLocked(cur)
			}
		} else {
			d.runningRemoveLocked(cur)
		}
		aborted = append(aborted, cur)
		c.current = nil
	}
	aborted = append(aborted, c.queue...)
	c.queue = nil
	d.memUsed -= c.memUsed
	c.memUsed = 0
	d.residencyChangedLocked(c)
	if !d.cfg.NoTraces {
		now := d.eng.Now()
		c.memTr.Add(now, 0)
		d.mem.Add(now, float64(d.memUsed))
	}
	delete(d.clients, c.cfg.Name)
	d.order = append(d.order[:c.orderIdx], d.order[c.orderIdx+1:]...)
	for i := c.orderIdx; i < len(d.order); i++ {
		d.order[i].orderIdx = i
	}
	d.rebalanceLocked()
	d.mu.Unlock()

	for _, k := range aborted {
		if k.waiter != nil {
			// Typically a no-op: the owning process is already dead by the
			// time its context is destroyed, and wakes to dead processes are
			// discarded.
			k.waiter.Wake(ErrKernelAborted)
		} else if k.onComplete != nil {
			k.onComplete(ErrKernelAborted)
		}
	}
}

// InjectKernelFault arms a one-shot kernel fault: the next kernel launched
// by a client whose name starts with prefix completes immediately with
// ErrInjectedFault instead of executing. Side-task containers name their
// clients "ctr/..." while pipeline training stages use "train-s...", so a
// "ctr/" prefix faults only harvested work — the fault plane never touches
// the main job. Re-arming before the previous fault fires just extends the
// prefix; arming is idempotent per pending fault.
func (d *Device) InjectKernelFault(prefix string) {
	d.mu.Lock()
	d.faultErr = ErrInjectedFault
	d.faultPrefix = prefix
	d.mu.Unlock()
}

// InjectedKernelFaults reports how many armed faults have been delivered.
func (d *Device) InjectedKernelFaults() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faultsFired
}
