package simgpu

import (
	"fmt"
	"math"
	"strings"
	"time"

	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

// KernelSpec describes one GPU kernel (or fused group of kernels forming one
// logical step/op).
//
// Specs travel by pointer through the whole launch path (Launch, Exec,
// ExecThen, ExecLeadThen) so hot loops can keep one spec alive and mutate
// Name/Duration between launches instead of copying the struct per call.
// The device reads the spec at launch (work sizing) and at retirement
// (throughput accounting), both of which happen before the completion is
// delivered — so mutating a spec from a completion continuation is safe,
// but a spec must not change while its kernel is still in flight.
type KernelSpec struct {
	Name string
	// Duration is the kernel's solo run time on an unshared reference GPU.
	Duration time.Duration
	// Demand is the SM fraction the kernel occupies when unconstrained,
	// in (0, 1]. Defaults to 1.
	Demand float64
	// Weight is the kernel's scheduling pressure under PolicyMPS — a proxy
	// for how many thread blocks it keeps resident. Defaults to Demand.
	// Compute-saturating kernels (Graph SGD) should set Weight > Demand.
	Weight float64
}

func (s *KernelSpec) normalize() {
	if s.Demand <= 0 || s.Demand > 1 {
		s.Demand = 1
	}
	if s.Weight <= 0 {
		s.Weight = s.Demand
	}
	if s.Duration < 0 {
		s.Duration = 0
	}
}

// kernel is an in-flight kernel.
type kernel struct {
	client *Client
	spec   *KernelSpec

	// work remaining in reference SM-seconds; total = Demand * Duration.
	work float64
	// alloc is the current SM fraction granted.
	alloc float64
	// lastUpdate is the engine time work was last accrued at.
	lastUpdate time.Duration

	// timer is the completion event. Its handle never leaves the kernel,
	// so reschedules after a rebalance reuse the same Timer allocation.
	timer *simtime.Timer
	// doneName and completeFn are precomputed once per kernel: completion
	// is rescheduled on every rebalance and must not allocate.
	doneName   string
	completeFn func()
	onComplete func(error)
	// waiter, when set, receives the completion (nil or an error) through
	// its wait slot instead of onComplete. This is the blocking/inline Exec
	// path: delivering to a pre-bound process wait costs no closure.
	waiter   *simproc.Process
	started  time.Duration
	startSet bool
	// runIdx is the kernel's slot in the device's running-set cache, -1
	// while queued, leading or retired.
	runIdx int32

	// Host-lead state (ExecLeadThen). A leading kernel is not yet runnable:
	// it joins the running set at leadUntil (maturation), standing in for
	// the caller's host-side step phase without a separate sleep event.
	// held marks a lead frozen by HoldLead (SIGTSTP landing inside the host
	// phase); the remaining lead resumes on ReleaseLead. leadDeadline
	// caches the armed no-further-events completion hypothesis so lead
	// refreshes skip no-op timer re-arms.
	leading      bool
	held         bool
	leadUntil    time.Duration
	leadDeadline time.Duration
}

func (k *kernel) cancelTimer() {
	if k.timer != nil {
		k.timer.Cancel()
	}
}

// popKernelLocked recycles a kernel struct from the pool (or allocates one),
// resetting only the fields a launch mutates: the completion timer and its
// closure survive recycling, and retirement already cleared the delivery
// fields. This per-field reset replaces a full struct re-zero that copied
// ~130 bytes per launch. Caller holds d.mu.
func (d *Device) popKernelLocked(c *Client, spec *KernelSpec, onComplete func(error), waiter *simproc.Process) *kernel {
	var k *kernel
	if n := len(d.kernelPool); n > 0 {
		k = d.kernelPool[n-1]
		d.kernelPool[n-1] = nil
		d.kernelPool = d.kernelPool[:n-1]
		k.client = c
		k.spec = spec
		k.work = spec.Demand * spec.Duration.Seconds()
		k.alloc = 0
		k.lastUpdate = 0
		k.onComplete = onComplete
		k.waiter = waiter
		k.runIdx = -1
		k.started = 0
		k.startSet = false
		k.leading = false
		k.held = false
		k.leadUntil = 0
		k.leadDeadline = -1
	} else {
		k = &kernel{
			client:       c,
			spec:         spec,
			work:         spec.Demand * spec.Duration.Seconds(),
			onComplete:   onComplete,
			waiter:       waiter,
			runIdx:       -1,
			leadDeadline: -1,
		}
		k.completeFn = func() { d.completeKernel(k) }
	}
	// The timer label is a debug string only; reusing spec.Name avoids a
	// per-launch concat.
	k.doneName = spec.Name
	return k
}

// Launch enqueues a kernel on the client's (serial) stream. onComplete fires
// from engine-callback context when the kernel finishes or is aborted; it
// may be nil. The returned handle is opaque; launching is asynchronous,
// matching CUDA semantics — this is exactly why the paper's imperative
// interface cannot stop in-flight work (§5).
func (c *Client) Launch(spec *KernelSpec, onComplete func(error)) error {
	return c.launch(spec, onComplete, nil)
}

// launch enqueues a kernel delivering either to onComplete or to waiter's
// wait slot (exactly one of the two is non-nil; both nil is fire-and-forget).
func (c *Client) launch(spec *KernelSpec, onComplete func(error), waiter *simproc.Process) error {
	spec.normalize()
	d := c.dev
	d.mu.Lock()
	if c.closed {
		d.mu.Unlock()
		if waiter != nil {
			waiter.Wake(ErrClientClosed)
		} else if onComplete != nil {
			onComplete(ErrClientClosed)
		}
		return ErrClientClosed
	}
	if d.faultErr != nil && strings.HasPrefix(c.cfg.Name, d.faultPrefix) {
		// Armed kernel fault: deliver the failure through the same path a
		// closed client uses, never touching the device's running set.
		err := d.faultErr
		d.faultErr = nil
		d.faultsFired++
		d.mu.Unlock()
		if waiter != nil {
			waiter.Wake(err)
		} else if onComplete != nil {
			onComplete(err)
		}
		return err
	}
	// Leads due at-or-before this instant join the running set first, so
	// this launch's rebalance sees exactly the set an unfused arm would.
	d.matureLeadsLocked(nil)
	k := d.popKernelLocked(c, spec, onComplete, waiter)
	if c.current == nil {
		c.current = k
		k.started = d.eng.Now()
		k.startSet = true
		d.runningInsertLocked(k)
		d.residencyChangedLocked(c)
		// Fold an open fusion window: this launch's rebalance covers the
		// deferred completion transition too (both at the same instant).
		if d.fusing {
			d.fusing = false
			d.fusedFolds++
		}
		d.rebalanceLocked()
	} else {
		d.flushFusionLocked()
		c.queue = append(c.queue, k)
	}
	d.mu.Unlock()
	return nil
}

// Exec launches the kernel and parks the process until completion,
// returning the kernel's completion error. This is the blocking API side
// tasks use; the completion delivers straight into the process's wait slot,
// so the whole launch→park→complete→wake cycle allocates nothing.
func (c *Client) Exec(p *simproc.Process, spec *KernelSpec) error {
	// spec.Name is used verbatim as the park label: Exec runs once per
	// simulated kernel and a "kernel:" prefix concat here shows up in
	// profiles.
	p.BeginWait(nil)
	_ = c.launch(spec, nil, p)
	return execResult(p.Await(spec.Name))
}

// ExecThen is the inline form of Exec: k receives the completion payload
// (nil on success, otherwise an error) once the kernel finishes.
//
// Called from within a kernel-completion delivery (the self-loop: a step or
// pipeline-op continuation immediately issuing the next kernel), it takes
// the fused path: the still-armed wait slot is re-armed in place
// (ChainWait), and the launch folds the deferred completion rebalance into
// its own — completion and relaunch become one dispatch.
func (c *Client) ExecThen(p *simproc.Process, spec *KernelSpec, k func(any)) {
	if p.ChainWait(spec.Name, k) {
		_ = c.launch(spec, nil, p)
		return
	}
	p.BeginWait(k)
	_ = c.launch(spec, nil, p)
	p.EndWait(spec.Name)
}

// execResult converts a completion wake payload to the Exec error.
func execResult(res any) error {
	if res == nil {
		return nil
	}
	err, ok := res.(error)
	if !ok {
		return fmt.Errorf("simgpu: unexpected completion payload %T", res)
	}
	return err
}

// QueueDepth reports the number of kernels waiting behind the running one.
func (c *Client) QueueDepth() int {
	c.dev.mu.Lock()
	defer c.dev.mu.Unlock()
	n := len(c.queue)
	if c.current != nil {
		n++
	}
	return n
}

// Busy reports whether the client has a kernel in flight on the device. A
// host-lead kernel counts only once its lead has elapsed: before leadUntil
// (or while held) the equivalent unfused client would still be in its
// host-side phase with nothing submitted, and the worker's grace-kill check
// relies on exactly that distinction.
func (c *Client) Busy() bool {
	c.dev.mu.Lock()
	defer c.dev.mu.Unlock()
	k := c.current
	if k == nil {
		return false
	}
	if k.leading {
		return !k.held && k.leadUntil <= c.dev.eng.Now()
	}
	return true
}

// rebalanceLocked recomputes every running kernel's SM allocation after any
// change in the running set, accrues progress, updates traces, and
// reschedules completion events; pending host-lead hypotheses are refreshed
// against the new allocation state. Caller holds d.mu.
func (d *Device) rebalanceLocked() {
	if d.cfg.FullRebalance {
		d.rebalanceFullLocked()
		return
	}
	d.rebalanceAtLocked(d.eng.Now(), nil)
	d.refreshLeadsLocked()
}

// rebalanceAtLocked is the incremental scheduler pass, parameterized by the
// instant the triggering transition happened at. For ordinary transitions at
// is the current engine time; for a host-lead maturation it is the lead's
// leadUntil — possibly in the past of the engine clock, because maturation
// runs lazily at the first device event at-or-after the lead elapses. All
// arithmetic (accrual, water-fill, tax, trace points, completion deadlines)
// is computed as of at, so a lazy maturation reproduces bit-exactly the
// rebalance an eager launch at leadUntil would have performed; completion
// delays are expressed relative to the real clock.
//
// The pass trusts the device's transition-maintained caches: d.running
// already reflects the launch/completion/abort/maturation that triggered the
// rebalance (same kernels, same client order the full recompute would
// derive), and d.resident already counts the ResidencyTax predicate. When
// the running set's fingerprint is unchanged the converged allocation vector
// comes straight from the share cache; each kernel's completion timer is
// re-armed in place (simtime's pending-timer Reschedule) rather than
// canceled and re-pushed. Everything numeric — accrual, allocation, tax
// scaling, completion deadlines and their (when, seq) ordering — is computed
// exactly as the full pass computes it, which is what the float-exact
// differential oracle asserts.
//
// firing, when non-nil, is the kernel whose completion dispatch this pass
// runs under (a due lead maturing inside completeKernel). The return value
// reports whether firing's completion moved later than the dispatch instant
// — the fire was premature and has been re-armed, so the caller must abandon
// the in-flight completion. Caller holds d.mu.
func (d *Device) rebalanceAtLocked(at time.Duration, firing *kernel) (stale bool) {
	running := d.running

	// Accrue progress under the old allocations.
	for _, k := range running {
		if k.alloc > 0 {
			k.work -= k.alloc * (at - k.lastUpdate).Seconds()
			if k.work < 0 {
				k.work = 0
			}
		}
		k.lastUpdate = at
	}

	// taxed is the MPS context-multiplexing predicate: with two or more
	// resident client contexts, every kernel pays a small scheduling
	// overhead.
	taxed := d.cfg.ResidencyTax > 0 && d.cfg.Policy == PolicyMPS && d.resident >= 2
	if d.cfg.NoShareCache || !d.shareCacheHitLocked(running, taxed) {
		d.assignAllocations(running)
		if taxed {
			scale := 1 / (1 + d.cfg.ResidencyTax)
			for _, k := range running {
				k.alloc *= scale
			}
		}
		if !d.cfg.NoShareCache {
			d.shareCacheStoreLocked(running, taxed)
		}
	}

	var total float64
	for _, k := range running {
		total += k.alloc
		if d.scheduleCompletionAtLocked(k, at, firing) {
			stale = true
		}
	}
	if !d.cfg.NoTraces {
		for _, k := range running {
			k.client.occTr.Add(at, k.alloc)
		}
		for _, c := range d.order {
			if c.current == nil || c.current.leading {
				c.occTr.Add(at, 0)
			}
		}
		d.occ.Add(at, total)
	}
	return stale
}

// rebalanceFullLocked is the original full recompute: it rederives the
// running set by walking the client list, recounts residency, cancels and
// re-pushes every completion timer. Kept verbatim as the differential oracle
// for the incremental pass (DeviceConfig.FullRebalance); host leads never
// exist on a full-rebalance device (LeadCapable is false). Caller holds d.mu.
func (d *Device) rebalanceFullLocked() {
	now := d.eng.Now()

	running := d.scratchRun[:0]
	for _, c := range d.order {
		if c.current != nil {
			running = append(running, c.current)
		}
	}
	d.scratchRun = running

	// Accrue progress under the old allocations.
	for _, k := range running {
		if k.alloc > 0 {
			k.work -= k.alloc * (now - k.lastUpdate).Seconds()
			if k.work < 0 {
				k.work = 0
			}
		}
		k.lastUpdate = now
		k.cancelTimer()
	}

	d.assignAllocations(running)

	// MPS context-multiplexing tax: with two or more resident client
	// contexts, every kernel pays a small scheduling overhead.
	if d.cfg.ResidencyTax > 0 && d.cfg.Policy == PolicyMPS {
		resident := 0
		for _, c := range d.order {
			if c.memUsed > 0 || c.current != nil {
				resident++
			}
		}
		if resident >= 2 {
			scale := 1 / (1 + d.cfg.ResidencyTax)
			for _, k := range running {
				k.alloc *= scale
			}
		}
	}

	var total float64
	for _, k := range running {
		total += k.alloc
		d.scheduleCompletionLocked(k)
	}
	if !d.cfg.NoTraces {
		for _, k := range running {
			k.client.occTr.Add(now, k.alloc)
		}
		for _, c := range d.order {
			if c.current == nil {
				c.occTr.Add(now, 0)
			}
		}
		d.occ.Add(now, total)
	}
}

// assignAllocations computes per-kernel SM fractions under the device
// policy. Rates are in reference-GPU units: a device with Capacity 0.5 can
// grant at most 0.5 total.
func (d *Device) assignAllocations(running []*kernel) {
	switch d.cfg.Policy {
	case PolicyTimeSlice:
		// Contexts round-robin on the whole device, with quanta granted in
		// proportion to client weight (a multi-stream training process
		// keeps more runnable work queued than a single-stream side task,
		// so it wins more quanta). Within its quanta a kernel advances at
		// its demand.
		var totalW float64
		for _, k := range running {
			totalW += clientWeightOf(k)
		}
		for _, k := range running {
			share := clientWeightOf(k) / totalW
			k.alloc = math.Max(minAlloc, k.spec.Demand*d.cfg.Capacity*share)
		}
	default: // PolicyMPS: weighted water-filling capped by demand.
		slots := d.scratchSlots[:0]
		for _, k := range running {
			w := k.spec.Weight
			if k.client.cfg.Weight > 0 {
				w = k.client.cfg.Weight
			}
			slots = append(slots, allocSlot{k: k, w: w})
		}
		d.scratchSlots = slots
		remaining := d.cfg.Capacity
		for {
			var totalW float64
			for _, s := range slots {
				if !s.fixed {
					totalW += s.w
				}
			}
			if totalW == 0 {
				break
			}
			progressed := false
			for i := range slots {
				s := &slots[i]
				if s.fixed {
					continue
				}
				share := s.w / totalW * remaining
				demand := s.k.spec.Demand * d.cfg.Capacity
				if demand <= share {
					s.k.alloc = math.Max(minAlloc, demand)
					remaining -= demand
					s.fixed = true
					progressed = true
				}
			}
			if !progressed {
				// No kernel is demand-capped: distribute by weight.
				for i := range slots {
					s := &slots[i]
					if !s.fixed {
						s.k.alloc = math.Max(minAlloc, s.w/totalW*remaining)
					}
				}
				break
			}
		}
	}
}

// allocSlot is the MPS water-filling work item (in Device scratch storage
// so per-rebalance allocation stays zero).
type allocSlot struct {
	k     *kernel
	w     float64
	fixed bool
}

// clientWeightOf reports a kernel's scheduling weight at client
// granularity (for time-slicing): the client weight if set, else 1.
func clientWeightOf(k *kernel) float64 {
	if w := k.client.cfg.Weight; w > 0 {
		return w
	}
	return 1
}

// scheduleCompletionLocked (re)schedules the kernel's completion under its
// current rate: a fresh push on the full-recompute path (the timer was
// canceled during accrual), an in-place re-arm on the incremental path (the
// timer is still pending) — identical (when, seq) outcomes either way.
// Caller holds d.mu.
func (d *Device) scheduleCompletionLocked(k *kernel) {
	if k.alloc <= 0 {
		k.cancelTimer() // no rate: park the completion (full path already did)
		return
	}
	secs := k.work / k.alloc
	delay := time.Duration(math.Ceil(secs * 1e9))
	k.timer = simtime.Reschedule(d.eng, k.timer, delay, k.doneName, k.completeFn)
}

// scheduleCompletionAtLocked is scheduleCompletionLocked as of instant at:
// the completion lands at at + ceil(work/alloc), expressed as a delay on the
// real engine clock — the same absolute (when) an eager rebalance at at
// would have armed. When k is the kernel whose completion dispatch this pass
// runs under (firing), a deadline at-or-before the dispatch instant lets the
// in-flight completion proceed (re-arming it would push a duplicate event),
// and a later deadline re-arms the timer and reports the fire stale. Caller
// holds d.mu.
func (d *Device) scheduleCompletionAtLocked(k *kernel, at time.Duration, firing *kernel) bool {
	if k.alloc <= 0 {
		k.cancelTimer() // no rate: park the completion
		return false
	}
	secs := k.work / k.alloc
	delay := time.Duration(math.Ceil(secs*1e9)) + (at - d.eng.Now())
	if k == firing && delay <= 0 {
		return false
	}
	k.timer = simtime.Reschedule(d.eng, k.timer, delay, k.doneName, k.completeFn)
	return k == firing
}

// completeKernel retires a finished kernel, promotes the client's next
// queued kernel, and rebalances — or, on a fusable device, defers the
// rebalance into a fusion window: the completion delivery below runs at the
// same virtual instant, and when its continuation immediately launches the
// next kernel (the ExecThen self-loop, the pipeline's op chain), the launch
// folds the deferred completion transition into its own single rebalance —
// one accrual, one water-fill (typically a share-cache hit, since the
// steady-state successor has the same fingerprint), one completion-timer
// pass, where the unfused path pays all three twice. If nothing relaunches,
// the flush after delivery settles the window at the same instant; either
// way the final state is bit-identical to the unfused sequence (same-instant
// trace points overwrite, rescheduled timers keep their relative order).
func (d *Device) completeKernel(k *kernel) {
	d.mu.Lock()
	c := k.client
	if c == nil || c.current != k {
		// Stale completion (aborted); ignore.
		d.mu.Unlock()
		return
	}
	// Leads due at-or-before this instant mature first — including k
	// itself, if this fire is its armed lead hypothesis. A maturation that
	// pushed k's true completion later has re-armed its timer: the fire was
	// premature, abandon it.
	if d.matureLeadsLocked(k) {
		d.mu.Unlock()
		return
	}
	if k.leading {
		// Still inside its host lead (held, or the lead has not elapsed):
		// nothing can complete yet. Armed hypothesis deadlines always lie
		// beyond leadUntil, so this is a defensive guard.
		d.mu.Unlock()
		return
	}
	d.kernels++
	d.workDone += k.spec.Demand * k.spec.Duration.Seconds()
	c.current = nil
	if len(c.queue) > 0 {
		c.current = c.queue[0]
		c.queue = c.queue[1:]
		c.current.started = d.eng.Now()
		c.current.startSet = true
		d.runningReplaceLocked(k, c.current)
	} else {
		d.runningRemoveLocked(k)
	}
	d.residencyChangedLocked(c)
	fused := d.fusable
	if fused {
		d.fusing = true
	} else {
		d.rebalanceLocked()
	}
	// Retire k into the pool while the lock is held; after Unlock this
	// function must not touch k again — the completion delivery below may
	// launch a new kernel that reuses it.
	cb := k.onComplete
	w := k.waiter
	k.onComplete = nil
	k.waiter = nil
	k.client = nil
	d.kernelPool = append(d.kernelPool, k)
	d.mu.Unlock()

	if w != nil {
		// Chained delivery: the wait slot stays armed while the
		// continuation runs, so an immediate ExecThen re-arms it in place
		// (simproc.ChainWait) instead of a disarm/re-arm round trip.
		w.WakeChained(nil)
	} else if cb != nil {
		cb(nil)
	}

	if fused {
		d.mu.Lock()
		d.flushFusionLocked()
		d.mu.Unlock()
	}
}
