package simgpu

import (
	"errors"
	"testing"
	"time"
)

func TestInjectKernelFaultFailsNextPrefixedLaunch(t *testing.T) {
	eng, d := newDev(t, DeviceConfig{})
	side := mustClient(t, d, ClientConfig{Name: "ctr/worker0/rn18"})
	train := mustClient(t, d, ClientConfig{Name: "train-s0"})

	d.InjectKernelFault("ctr/")

	// The training client launches while the fault is armed: untouched.
	var trainErr error
	trainDone := false
	if err := train.Launch(&KernelSpec{Name: "fp", Duration: 10 * time.Millisecond}, func(err error) {
		trainErr, trainDone = err, true
	}); err != nil {
		t.Fatalf("train launch: %v", err)
	}

	// The side-task client absorbs the fault, immediately.
	var sideErr error
	if err := side.Launch(&KernelSpec{Name: "step", Duration: 10 * time.Millisecond}, func(err error) {
		sideErr = err
	}); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("side launch returned %v, want ErrInjectedFault", err)
	}
	if !errors.Is(sideErr, ErrInjectedFault) {
		t.Fatalf("side completion %v, want ErrInjectedFault", sideErr)
	}

	// One-shot: the next side-task launch runs clean.
	var secondErr error = errors.New("unset")
	if err := side.Launch(&KernelSpec{Name: "step", Duration: 10 * time.Millisecond}, func(err error) {
		secondErr = err
	}); err != nil {
		t.Fatalf("second side launch: %v", err)
	}
	eng.MustDrain(1000)

	if !trainDone || trainErr != nil {
		t.Fatalf("train kernel done=%v err=%v", trainDone, trainErr)
	}
	if secondErr != nil {
		t.Fatalf("second side kernel err=%v", secondErr)
	}
	if d.InjectedKernelFaults() != 1 {
		t.Fatalf("faultsFired = %d, want 1", d.InjectedKernelFaults())
	}
}
