package simgpu

import (
	"testing"
	"time"

	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

// TestExecAllocFree pins the blocking kernel path: once the kernel pool and
// the process's wait slot are warm, each launch→park→complete→wake cycle
// (one engine step per kernel) allocates nothing — no setup closure, no
// completion closure, no WaitEvent state.
func TestExecAllocFree(t *testing.T) {
	eng := simtime.NewVirtual()
	rt := simproc.NewRuntime(eng)
	dev := NewDevice(eng, DeviceConfig{Name: "gpu", NoTraces: true})
	c, err := dev.NewClient(ClientConfig{Name: "task"})
	if err != nil {
		t.Fatal(err)
	}
	spec := &KernelSpec{Name: "k", Duration: time.Microsecond, Demand: 0.5, Weight: 0.5}
	rt.Spawn("execer", func(p *simproc.Process) error {
		for {
			if err := c.Exec(p, spec); err != nil {
				return err
			}
		}
	})
	for i := 0; i < 16; i++ {
		eng.Step()
	}
	allocs := testing.AllocsPerRun(2000, func() {
		eng.Step()
	})
	if allocs != 0 {
		t.Fatalf("Exec cycle allocates %.1f objects/op, want 0", allocs)
	}
}

// TestExecThenAllocFree pins the inline variant: the continuation form must
// be as clean as the blocking one.
func TestExecThenAllocFree(t *testing.T) {
	eng := simtime.NewVirtual()
	rt := simproc.NewRuntime(eng)
	dev := NewDevice(eng, DeviceConfig{Name: "gpu", NoTraces: true})
	c, err := dev.NewClient(ClientConfig{Name: "task"})
	if err != nil {
		t.Fatal(err)
	}
	spec := &KernelSpec{Name: "k", Duration: time.Microsecond, Demand: 0.5, Weight: 0.5}
	rt.SpawnInline("execer", func(p *simproc.Process) {
		var k func(any)
		k = func(res any) {
			if res != nil {
				p.Exit(res.(error))
				return
			}
			c.ExecThen(p, spec, k)
		}
		c.ExecThen(p, spec, k)
	})
	for i := 0; i < 16; i++ {
		eng.Step()
	}
	allocs := testing.AllocsPerRun(2000, func() {
		eng.Step()
	})
	if allocs != 0 {
		t.Fatalf("ExecThen cycle allocates %.1f objects/op, want 0", allocs)
	}
}
