package simgpu

import (
	"math"
	"strings"
	"time"

	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

// Host-lead launches: ExecLeadThen fuses a caller-side host phase (the side
// task's per-step CPU overhead) into the kernel's completion event. The
// kernel is created at launch time but stays a *lead* — outside the running
// set, consuming no SM share — until now+lead, when it *matures*: joins the
// running set and rebalances exactly as a plain launch at that instant
// would. One engine event (the armed completion hypothesis) replaces the
// caller's sleep(lead) + launch pair.
//
// Maturation is lazy: it runs at the first device transition at-or-after
// leadUntil, rebalancing *as of leadUntil* (rebalanceAtLocked), which
// reproduces bit-exactly the accrual/water-fill/trace/deadline arithmetic of
// an eager launch. The armed completion timer is a hypothesis — the exact
// completion if no further device events intervene. Device transitions
// after arming can only push the true completion later (they are themselves
// rebalance points that refresh the hypothesis), so the timer fires
// early-never-late; a premature fire matures the lead, detects the
// staleness and re-arms (rebalanceAtLocked's firing contract).
//
// The Stop/Pause boundary: HoldLead freezes a lead whose host phase a
// SIGTSTP interrupted (the unfused arm's sleep would have frozen the same
// way), ReleaseLead resumes it with leadUntil pushed to at least the resume
// instant — matching the deferred sleep-wake delivery of a stopped process.
// A lead whose host phase already elapsed matures on hold, so in-flight
// kernels keep running through a pause, exactly as the paper's asynchronous
// kernels do (§5).

// LeadCapable reports whether the device supports host-lead launches:
// virtual engine, incremental rebalance (the full-recompute oracle never
// sees leads; callers fall back to their unfused two-event path, which is
// bit-identical by construction).
func (d *Device) LeadCapable() bool { return d.fusable }

// ExecLeadThen is ExecThen with a host-lead offset: the kernel becomes
// runnable at now+lead and k receives the completion payload (nil or error)
// when it finishes. lead <= 0 degenerates to a plain ExecThen.
func (c *Client) ExecLeadThen(p *simproc.Process, spec *KernelSpec, lead time.Duration, k func(any)) {
	if lead <= 0 {
		c.ExecThen(p, spec, k)
		return
	}
	if p.ChainWait(spec.Name, k) {
		_ = c.launchLead(spec, lead, p)
		return
	}
	p.BeginWait(k)
	_ = c.launchLead(spec, lead, p)
	p.EndWait(spec.Name)
}

// launchLead creates a lead kernel maturing at now+lead. The client's
// stream must be idle: a host phase cannot overlap the same stream's
// in-flight kernel (the side-task step loop is strictly serial).
func (c *Client) launchLead(spec *KernelSpec, lead time.Duration, waiter *simproc.Process) error {
	spec.normalize()
	d := c.dev
	if !d.fusable {
		// No lead machinery on this device (full-recompute oracle or wall
		// engine): fall back to the unfused shape — host phase as a plain
		// delay, then an ordinary launch waking the registered waiter.
		w := waiter
		simtime.Detached(d.eng, lead, spec.Name, func() { _ = c.launch(spec, nil, w) })
		return nil
	}
	d.mu.Lock()
	if c.closed {
		d.mu.Unlock()
		waiter.Wake(ErrClientClosed)
		return ErrClientClosed
	}
	if d.faultErr != nil && strings.HasPrefix(c.cfg.Name, d.faultPrefix) {
		// Armed kernel fault: consume it now, deliver it when the host
		// phase ends — the instant the unfused arm's launch would have
		// consumed and delivered it.
		err := d.faultErr
		d.faultErr = nil
		d.faultsFired++
		d.mu.Unlock()
		w := waiter
		simtime.Detached(d.eng, lead, spec.Name, func() { w.Wake(err) })
		return err
	}
	if c.current != nil {
		d.mu.Unlock()
		panic("simgpu: ExecLeadThen on a busy client")
	}
	// The unfused arm's continuation would sleep here without touching the
	// device, so an open fusion window settles now (flush, not fold — there
	// is no launch rebalance at this instant to fold into), and leads due
	// at this instant mature.
	d.flushFusionLocked()
	d.matureLeadsLocked(nil)
	k := d.popKernelLocked(c, spec, nil, waiter)
	k.leading = true
	k.leadUntil = d.eng.Now() + lead
	c.current = k
	d.leadsInsertLocked(k)
	d.armLeadLocked(k)
	d.mu.Unlock()
	return nil
}

// leadsInsertLocked adds k to the pending-leads list, keeping leadUntil
// order. Caller holds d.mu.
func (d *Device) leadsInsertLocked(k *kernel) {
	i := len(d.leads)
	for i > 0 && d.leads[i-1].leadUntil > k.leadUntil {
		i--
	}
	d.leads = append(d.leads, nil)
	copy(d.leads[i+1:], d.leads[i:])
	d.leads[i] = k
}

// leadsRemoveLocked drops k from the pending-leads list. Caller holds d.mu.
func (d *Device) leadsRemoveLocked(k *kernel) {
	for i, lk := range d.leads {
		if lk == k {
			copy(d.leads[i:], d.leads[i+1:])
			last := len(d.leads) - 1
			d.leads[last] = nil
			d.leads = d.leads[:last]
			return
		}
	}
}

// matureLeadsLocked promotes every lead whose host phase has elapsed into
// the running set, in leadUntil order, each with a rebalance as of its own
// leadUntil — replicating the event sequence the unfused arm's launches
// would have produced. firing follows the rebalanceAtLocked contract; the
// return value reports whether firing's completion was re-armed (the
// in-flight fire is stale). Caller holds d.mu.
func (d *Device) matureLeadsLocked(firing *kernel) (stale bool) {
	if len(d.leads) == 0 {
		return false
	}
	now := d.eng.Now()
	matured := false
	for len(d.leads) > 0 && d.leads[0].leadUntil <= now {
		k := d.leads[0]
		copy(d.leads, d.leads[1:])
		last := len(d.leads) - 1
		d.leads[last] = nil
		d.leads = d.leads[:last]
		k.leading = false
		k.started = k.leadUntil
		k.startSet = true
		d.runningInsertLocked(k)
		d.residencyChangedLocked(k.client)
		if d.rebalanceAtLocked(k.leadUntil, firing) {
			stale = true
		}
		matured = true
	}
	if matured {
		d.refreshLeadsLocked()
	}
	return stale
}

// refreshLeadsLocked re-derives every pending lead's completion hypothesis
// after a change to the allocation state (running set, residency). Caller
// holds d.mu.
func (d *Device) refreshLeadsLocked() {
	for _, k := range d.leads {
		d.armLeadLocked(k)
	}
}

// armLeadLocked computes k's completion hypothesis — the exact completion
// instant if no further device events intervene before leadUntil — and arms
// its timer at it. The hypothesis inserts k into a copy of the running set
// at its client-order position and runs the same water-fill + residency-tax
// arithmetic the maturation rebalance will run, so in the no-event case the
// armed (when) IS the completion, bit-exactly. The share cache is bypassed
// in both directions: hypothesis lookups would perturb the hit/miss stream
// and MRU order away from the unfused arm's. Caller holds d.mu.
func (d *Device) armLeadLocked(k *kernel) {
	// Hypothetical running set with k at its insertion position: the
	// water-fill iterates in slice order, so position affects float
	// summation order and must match runningInsertLocked's.
	idx := len(d.running)
	for i, rk := range d.running {
		if rk.client.orderIdx > k.client.orderIdx {
			idx = i
			break
		}
	}
	run := d.scratchRun[:0]
	run = append(run, d.running[:idx]...)
	run = append(run, k)
	run = append(run, d.running[idx:]...)
	d.scratchRun = run

	// Save the real allocations: assignAllocations writes k.alloc for the
	// whole hypothetical set, and the running kernels' true allocations
	// must survive the dry run.
	allocs := d.scratchAllocs[:0]
	for _, rk := range run {
		allocs = append(allocs, rk.alloc)
	}
	d.scratchAllocs = allocs

	d.assignAllocations(run)
	resident := d.resident
	if !k.client.resident {
		resident++
	}
	if d.cfg.ResidencyTax > 0 && d.cfg.Policy == PolicyMPS && resident >= 2 {
		scale := 1 / (1 + d.cfg.ResidencyTax)
		for _, rk := range run {
			rk.alloc *= scale
		}
	}
	hyp := k.alloc
	for i, rk := range run {
		rk.alloc = allocs[i]
	}
	if hyp <= 0 {
		hyp = minAlloc
	}

	deadline := k.leadUntil + time.Duration(math.Ceil(k.work/hyp*1e9))
	if deadline == k.leadDeadline {
		// Unchanged hypothesis (the steady-state fused completion→relaunch
		// fold restores the same fingerprint): the armed timer stands.
		return
	}
	k.leadDeadline = deadline
	k.timer = simtime.Reschedule(d.eng, k.timer, deadline-d.eng.Now(), k.doneName, k.completeFn)
}

// HoldLead freezes the client's pending host lead (SIGTSTP landed inside
// the host phase). A lead whose host phase already elapsed matures instead:
// its kernel is in flight and keeps running through the pause, exactly as
// the unfused arm's asynchronously launched kernel would. No-op without a
// pending lead.
func (c *Client) HoldLead() {
	d := c.dev
	d.mu.Lock()
	d.flushFusionLocked()
	d.matureLeadsLocked(nil)
	k := c.current
	if k != nil && k.leading && !k.held {
		k.held = true
		k.cancelTimer()
		k.leadDeadline = -1
		d.leadsRemoveLocked(k)
	}
	d.mu.Unlock()
}

// ReleaseLead resumes a held lead (SIGCONT): the remaining host phase
// re-arms with leadUntil pushed to at least the resume instant — the
// deferred sleep-wake of a stopped unfused process delivers at exactly the
// same boundary. No-op without a held lead.
func (c *Client) ReleaseLead() {
	d := c.dev
	d.mu.Lock()
	d.flushFusionLocked()
	k := c.current
	if k != nil && k.leading && k.held {
		k.held = false
		if now := d.eng.Now(); k.leadUntil < now {
			k.leadUntil = now
		}
		d.leadsInsertLocked(k)
		if k.leadUntil <= d.eng.Now() {
			d.matureLeadsLocked(nil)
		} else {
			d.armLeadLocked(k)
		}
	}
	d.mu.Unlock()
}
