package simgpu

import (
	"testing"
	"time"

	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

// newTwoClientRig builds the steady co-location shape — two clients with
// distinct kernel specs — used by the cache/fusion engagement tests.
func newTwoClientRig(t *testing.T) (*simtime.Virtual, *Device, *Client, *Client) {
	t.Helper()
	eng := simtime.NewVirtual()
	dev := NewDevice(eng, DeviceConfig{Name: "gpu", NoTraces: true})
	a, err := dev.NewClient(ClientConfig{Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := dev.NewClient(ClientConfig{Name: "b"})
	if err != nil {
		t.Fatal(err)
	}
	return eng, dev, a, b
}

// skipIfOracleForced skips engagement tests when the CI oracle matrix forces
// the differential configuration that disables the path under test.
func skipIfOracleForced(t *testing.T, d *Device, needCache bool) {
	t.Helper()
	cfg := d.Config()
	if cfg.FullRebalance {
		t.Skip("FREERIDE_ORACLE_REBALANCE=full forces the full-recompute oracle")
	}
	if needCache && cfg.NoShareCache {
		t.Skip("FREERIDE_ORACLE_SHARECACHE=off disables the share cache")
	}
}

// TestShareCacheSteadyStateHits asserts the water-fill cache actually
// engages: in a steady two-client relaunch loop the running set alternates
// between a handful of fingerprints, so after warm-up every rebalance is a
// cache hit and the miss counter stops moving.
func TestShareCacheSteadyStateHits(t *testing.T) {
	eng, dev, a, b := newTwoClientRig(t)
	skipIfOracleForced(t, dev, true)
	specA := &KernelSpec{Name: "ka", Duration: 3 * time.Microsecond, Demand: 0.6, Weight: 0.6}
	specB := &KernelSpec{Name: "kb", Duration: 5 * time.Microsecond, Demand: 0.7, Weight: 0.9}
	var relaunchA, relaunchB func(error)
	relaunchA = func(error) { _ = a.Launch(specA, relaunchA) }
	relaunchB = func(error) { _ = b.Launch(specB, relaunchB) }
	relaunchA(nil)
	relaunchB(nil)
	for i := 0; i < 64; i++ {
		eng.Step()
	}
	_, warmMisses := dev.ShareCacheStats()
	preHits, _ := dev.ShareCacheStats()
	for i := 0; i < 500; i++ {
		eng.Step()
	}
	hits, misses := dev.ShareCacheStats()
	if misses != warmMisses {
		t.Fatalf("cache missed %d times in steady state (total %d), want 0 new misses", misses-warmMisses, misses)
	}
	if hits <= preHits {
		t.Fatalf("cache hits did not grow (%d -> %d); fast path not engaged", preHits, hits)
	}
}

// TestFusedFoldEngages asserts the completion→relaunch fusion window
// actually folds when a completion callback immediately relaunches: the
// self-loop pays one rebalance per kernel, not two.
func TestFusedFoldEngages(t *testing.T) {
	eng, dev, a, _ := newTwoClientRig(t)
	skipIfOracleForced(t, dev, false)
	spec := &KernelSpec{Name: "k", Duration: 3 * time.Microsecond, Demand: 0.6, Weight: 0.6}
	var relaunch func(error)
	relaunch = func(error) { _ = a.Launch(spec, relaunch) }
	relaunch(nil)
	for i := 0; i < 100; i++ {
		eng.Step()
	}
	if folds := dev.FusedFolds(); folds < 90 {
		t.Fatalf("FusedFolds = %d after 100 completion→relaunch cycles, want ≈100", folds)
	}
}

// TestShareCacheHitAllocFree pins the cache-hit path at 0 allocs/op: the
// two-client steady state exercises fingerprint compare, MRU promotion and
// vector install on every kernel event.
func TestShareCacheHitAllocFree(t *testing.T) {
	eng, dev, a, b := newTwoClientRig(t)
	skipIfOracleForced(t, dev, true)
	specA := &KernelSpec{Name: "ka", Duration: 3 * time.Microsecond, Demand: 0.6, Weight: 0.6}
	specB := &KernelSpec{Name: "kb", Duration: 5 * time.Microsecond, Demand: 0.7, Weight: 0.9}
	var relaunchA, relaunchB func(error)
	relaunchA = func(error) { _ = a.Launch(specA, relaunchA) }
	relaunchB = func(error) { _ = b.Launch(specB, relaunchB) }
	relaunchA(nil)
	relaunchB(nil)
	for i := 0; i < 64; i++ {
		eng.Step()
	}
	preHits, _ := dev.ShareCacheStats()
	allocs := testing.AllocsPerRun(2000, func() {
		eng.Step()
	})
	if allocs != 0 {
		t.Fatalf("cache-hit rebalance allocates %.2f objects/op, want 0", allocs)
	}
	if hits, _ := dev.ShareCacheStats(); hits <= preHits {
		t.Fatalf("pin did not exercise the hit path (hits %d -> %d)", preHits, hits)
	}
}

// TestFusedExecThenAllocFree pins the satellite guarantee for the fused
// ExecThen dispatch: an inline process's kernel self-loop — completion
// delivered through the chained wake, ChainWait re-arming the slot, the
// launch folding the deferred rebalance — runs at 0 allocs/op, with both
// fast paths demonstrably engaged.
func TestFusedExecThenAllocFree(t *testing.T) {
	eng, dev, a, b := newTwoClientRig(t)
	skipIfOracleForced(t, dev, false)
	procs := simproc.NewRuntime(eng)
	specA := &KernelSpec{Name: "ka", Duration: 3 * time.Microsecond, Demand: 0.6, Weight: 0.6}
	specB := &KernelSpec{Name: "kb", Duration: 5 * time.Microsecond, Demand: 0.7, Weight: 0.9}
	start := func(c *Client, spec *KernelSpec) func(p *simproc.Process) {
		return func(p *simproc.Process) {
			var k func(any)
			k = func(res any) {
				if res != nil {
					p.Exit(res.(error))
					return
				}
				c.ExecThen(p, spec, k)
			}
			c.ExecThen(p, spec, k)
		}
	}
	procs.SpawnInline("loop-a", start(a, specA))
	procs.SpawnInline("loop-b", start(b, specB))
	for i := 0; i < 64; i++ {
		eng.Step()
	}
	preFolds := dev.FusedFolds()
	allocs := testing.AllocsPerRun(2000, func() {
		eng.Step()
	})
	if allocs != 0 {
		t.Fatalf("fused ExecThen dispatch allocates %.2f objects/op, want 0", allocs)
	}
	if folds := dev.FusedFolds(); folds <= preFolds {
		t.Fatalf("pin did not exercise the fold path (folds %d -> %d)", preFolds, folds)
	}
}

// TestFusionFlushOnEntry covers the window's safety valve: a continuation
// that touches the device without relaunching — memory traffic here — must
// observe fully settled scheduler state (the deferred rebalance runs first),
// and the window must not fold into a later, unrelated launch.
func TestFusionFlushOnEntry(t *testing.T) {
	eng, dev, a, b := newTwoClientRig(t)
	skipIfOracleForced(t, dev, false)
	specB := &KernelSpec{Name: "kb", Duration: 5 * time.Microsecond, Demand: 0.7, Weight: 0.9}
	done := 0
	_ = b.Launch(specB, func(error) {})
	_ = a.Launch(&KernelSpec{Name: "ka", Duration: 3 * time.Microsecond, Demand: 0.6, Weight: 0.6},
		func(err error) {
			if err != nil {
				t.Errorf("kernel failed: %v", err)
				return
			}
			// Inside a's completion window: this AllocMem must flush the
			// deferred rebalance before charging memory.
			if err := a.AllocMem(1 << 20); err != nil {
				t.Errorf("AllocMem inside completion: %v", err)
			}
			done++
		})
	preFolds := dev.FusedFolds()
	eng.MustDrain(100)
	if done != 1 {
		t.Fatalf("completion ran %d times, want 1", done)
	}
	if dev.FusedFolds() != preFolds {
		t.Fatalf("window folded into an unrelated launch after a flush")
	}
	if got := a.MemUsed(); got != 1<<20 {
		t.Fatalf("client a memory = %d, want %d", got, 1<<20)
	}
}
