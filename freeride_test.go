package freeride_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"freeride"
	"freeride/internal/bubble"
	"freeride/internal/model"
	"freeride/internal/sidetask"
)

func fastCfg(method freeride.Method) freeride.Config {
	cfg := freeride.DefaultConfig()
	cfg.Epochs = 6
	cfg.Method = method
	cfg.WorkScale = sidetask.WorkNone
	return cfg
}

func TestBaselineTrainTimeMatchesAnalyticSpan(t *testing.T) {
	cfg := fastCfg(freeride.MethodNone)
	tNo, err := freeride.BaselineTrainTime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	analytic := time.Duration(cfg.Epochs) * model.NanoGPT3B.EpochSpan(4, 4)
	// Communication latency adds a little per epoch.
	if tNo < analytic || tNo > analytic+time.Duration(cfg.Epochs)*100*time.Millisecond {
		t.Fatalf("T_no = %v, want slightly above %v", tNo, analytic)
	}
}

func TestSessionIterativeEndToEnd(t *testing.T) {
	cfg := fastCfg(freeride.MethodIterative)
	sess, err := freeride.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sess.SubmitEverywhere(model.ResNet18)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("placed on %d workers, want 4", n)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSteps() == 0 {
		t.Fatal("no side-task steps completed")
	}
	tNo, err := freeride.BaselineTrainTime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.CostReport(tNo)
	if rep.I < 0 || rep.I > 0.03 {
		t.Fatalf("I = %.4f, want ~0.01", rep.I)
	}
	if rep.S <= 0 {
		t.Fatalf("S = %.4f, want positive", rep.S)
	}
	// Every eligible worker contributed.
	for _, tw := range res.Tasks {
		if tw.Steps == 0 {
			t.Errorf("task %s on worker %d ran no steps", tw.Name, tw.Worker)
		}
	}
	// Manager served bubbles.
	if res.ManagerStats.BubblesServed == 0 {
		t.Fatal("manager served no bubbles")
	}
}

func TestSessionDeterministicAcrossRuns(t *testing.T) {
	run := func() (time.Duration, uint64) {
		cfg := fastCfg(freeride.MethodIterative)
		sess, err := freeride.NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.SubmitEverywhere(model.PageRank); err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.TrainTime, res.TotalSteps()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", t1, s1, t2, s2)
	}
}

func TestSessionSeedChangesOutcome(t *testing.T) {
	run := func(seed int64) uint64 {
		cfg := fastCfg(freeride.MethodIterative)
		cfg.Seed = seed
		sess, err := freeride.NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.SubmitEverywhere(model.ResNet18); err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalSteps()
	}
	if run(1) == run(99) {
		t.Log("same step count across seeds (possible but unlikely); jitter may be inert")
	}
}

func TestEligibleStagesMatchMemoryLayout(t *testing.T) {
	cfg := fastCfg(freeride.MethodIterative)
	sess, err := freeride.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		task model.TaskProfile
		want int
	}{
		{model.ResNet18, 4},
		{model.PageRank, 4},
		{model.ResNet50, 3},
		{model.GraphSGD, 3},
		{model.VGG19, 2},
		{model.Image, 2},
	}
	for _, tc := range tests {
		if got := len(sess.EligibleStages(tc.task)); got != tc.want {
			t.Errorf("%s eligible stages = %d, want %d", tc.task.Name, got, tc.want)
		}
	}
}

func TestSessionRejectsDoubleRun(t *testing.T) {
	cfg := fastCfg(freeride.MethodNone)
	sess, err := freeride.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestMethodNoneRejectsTasks(t *testing.T) {
	sess, err := freeride.NewSession(fastCfg(freeride.MethodNone))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(model.ResNet18, 0); err == nil {
		t.Fatal("MethodNone accepted a side task")
	}
}

func TestGPipeScheduleSession(t *testing.T) {
	cfg := fastCfg(freeride.MethodIterative)
	cfg.Schedule = 2 // pipeline.ScheduleGPipe
	sess, err := freeride.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.SubmitEverywhere(model.ResNet18); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	// GPipe has more bubble time than 1F1B: more steps should fit.
	if res.TotalSteps() == 0 {
		t.Fatal("no steps under GPipe")
	}
}

func TestOverheadOrderingAcrossMethods(t *testing.T) {
	// The paper's central comparison: I(iterative) <= I(imperative) <<
	// I(MPS-for-SGD) and naive in between; savings positive only for
	// FreeRide.
	measure := func(m freeride.Method, task model.TaskProfile) (float64, float64) {
		cfg := fastCfg(m)
		sess, err := freeride.NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.SubmitEverywhere(task); err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		tNo, _ := freeride.BaselineTrainTime(cfg)
		rep := res.CostReport(tNo)
		return rep.I, rep.S
	}
	iterI, iterS := measure(freeride.MethodIterative, model.GraphSGD)
	impI, _ := measure(freeride.MethodImperative, model.GraphSGD)
	mpsI, mpsS := measure(freeride.MethodMPS, model.GraphSGD)
	naiveI, _ := measure(freeride.MethodNaive, model.GraphSGD)
	if !(iterI < impI && impI < naiveI && naiveI < mpsI) {
		t.Fatalf("overhead ordering broken: iter %.3f imp %.3f naive %.3f mps %.3f",
			iterI, impI, naiveI, mpsI)
	}
	if iterS <= 0 || mpsS >= 0 {
		t.Fatalf("savings signs wrong: iter %.3f mps %.3f", iterS, mpsS)
	}
}

func TestSubmitRejectedWhenNoMemoryFits(t *testing.T) {
	cfg := fastCfg(freeride.MethodIterative)
	sess, err := freeride.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	huge := model.VGG19
	huge.Name = "vgg19-huge"
	huge.MemBytes = 40 * model.GiB
	err = sess.Submit(huge, 0)
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("Submit = %v, want rejection", err)
	}
}

func TestMethodStrings(t *testing.T) {
	for m, want := range map[freeride.Method]string{
		freeride.MethodNone:       "none",
		freeride.MethodIterative:  "freeride-iterative",
		freeride.MethodImperative: "freeride-imperative",
		freeride.MethodMPS:        "mps",
		freeride.MethodNaive:      "naive",
	} {
		if m.String() != want {
			t.Errorf("Method(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestWorkScaleSmallRunsRealAlgorithms(t *testing.T) {
	cfg := fastCfg(freeride.MethodIterative)
	cfg.Epochs = 3
	cfg.WorkScale = sidetask.WorkSmall
	sess, err := freeride.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.SubmitEverywhere(model.PageRank); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSteps() == 0 {
		t.Fatal("no steps with real work enabled")
	}
}

func TestErrorsAreErrorsNotPanics(t *testing.T) {
	// Invalid config surfaces as error.
	cfg := freeride.DefaultConfig()
	cfg.RPCLatency = -1
	if _, err := freeride.NewSession(cfg); err == nil {
		t.Fatal("negative RPC latency accepted")
	}
	var sentinel error = errors.New("x")
	_ = sentinel
}

// countingTask is a minimal custom iterative task for the RegisterCustom API.
type countingTask struct{ hits *int }

func (c *countingTask) CreateSideTask(ctx *sidetask.Ctx) error { return nil }
func (c *countingTask) InitSideTask(ctx *sidetask.Ctx) error {
	return ctx.GPU.AllocMem(ctx.Profile.MemBytes)
}
func (c *countingTask) StopSideTask(ctx *sidetask.Ctx) error { return nil }
func (c *countingTask) RunNextStep(ctx *sidetask.Ctx) error {
	*c.hits++
	return ctx.ExecStepKernel()
}

func TestRegisterCustomTaskEndToEnd(t *testing.T) {
	cfg := fastCfg(freeride.MethodIterative)
	sess, err := freeride.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	profile := model.TaskProfile{
		Name:          "custom-counter",
		StepTime:      10 * time.Millisecond,
		MemBytes:      model.GiB,
		Demand:        0.4,
		Weight:        0.2,
		HostOverhead:  time.Millisecond,
		CreateTime:    50 * time.Millisecond,
		InitTime:      20 * time.Millisecond,
		SpeedServerII: 0.5,
		SpeedCPU:      0.05,
	}
	hits := 0
	if err := sess.RegisterCustom(profile, func(seed int64) sidetask.Iterative {
		return &countingTask{hits: &hits}
	}); err != nil {
		t.Fatal(err)
	}
	if err := sess.RegisterCustom(profile, func(int64) sidetask.Iterative { return nil }); err == nil {
		t.Fatal("duplicate custom registration accepted")
	}
	n, err := sess.SubmitEverywhere(profile)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("custom task placed on %d workers, want 4", n)
	}
	res, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSteps() == 0 || hits == 0 {
		t.Fatalf("custom task did not run: steps=%d hits=%d", res.TotalSteps(), hits)
	}
	if uint64(hits) < res.TotalSteps() {
		t.Fatalf("hits %d < counted steps %d", hits, res.TotalSteps())
	}
}

func TestRegisterCustomValidation(t *testing.T) {
	sess, err := freeride.NewSession(fastCfg(freeride.MethodIterative))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RegisterCustom(model.TaskProfile{}, func(int64) sidetask.Iterative { return nil }); err == nil {
		t.Fatal("empty profile name accepted")
	}
	if err := sess.RegisterCustom(model.TaskProfile{Name: "x"}, nil); err == nil {
		t.Fatal("nil constructor accepted")
	}
}

// TestDriftResizeRegeneratesSchedule pins the drift→schedule plumbing: a
// resize event that carries an actual micro-batch count regenerates the
// pipeline's op lists from the event's epoch on (real schedule change, not
// just report scaling), so training time grows by the extra per-epoch work.
func TestDriftResizeRegeneratesSchedule(t *testing.T) {
	run := func(cfg freeride.Config) time.Duration {
		sess, err := freeride.NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.TrainTime
	}
	base := fastCfg(freeride.MethodNone)
	plain := run(base)

	resized := base
	resized.Drift = &bubble.DriftSchedule{Seed: 1, Events: []bubble.DriftEvent{{
		At: 10 * time.Second, Kind: bubble.DriftResize, Magnitude: 1, MicroBatches: 8,
	}}}
	grown := run(resized)

	// Epochs starting after t=10s (3 of the 6 at ~4.07s each) run 8
	// micro-batches instead of 4: each pays 4×(FP+BP) ≈ 2.64s extra.
	extra := 3 * (model.NanoGPT3B.EpochSpan(4, 8) - model.NanoGPT3B.EpochSpan(4, 4))
	if grown < plain+extra || grown > plain+extra+300*time.Millisecond {
		t.Fatalf("resized train time %v, want ≈ %v + %v", grown, plain, extra)
	}

	// A resize event without a count only scales bubble reports — the
	// training timeline must be bit-identical to the unarmed run.
	scaled := base
	scaled.Drift = &bubble.DriftSchedule{Seed: 1, Events: []bubble.DriftEvent{{
		At: 10 * time.Second, Kind: bubble.DriftResize, Magnitude: 1,
	}}}
	if got := run(scaled); got != plain {
		t.Fatalf("count-less resize changed training time: %v vs %v", got, plain)
	}
}
