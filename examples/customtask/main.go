// Custom side task: the paper's core promise is that *generic* GPU
// workloads can ride bubbles with little engineering effort (§3.1). This
// example implements a brand-new side task — Monte Carlo estimation of π —
// against the iterative interface (the four functions of paper Figure 4a),
// profiles it with the automated profiler, registers it with the session
// and harvests bubbles with it.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"freeride"
	"freeride/internal/model"
	"freeride/internal/profiler"
	"freeride/internal/sidetask"
)

// piTask estimates π by sampling points in the unit square. One step = one
// batch of samples (the step-wise structure the iterative interface needs).
type piTask struct {
	samplesPerStep int
	rng            *rand.Rand

	// The "result sink" stands in for wherever a real task would persist
	// its output; it survives the task instance so we can read the
	// estimate after the run.
	sink *piSink
}

type piSink struct {
	mu     sync.Mutex
	inside int64
	total  int64
}

func (s *piSink) add(inside, total int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inside += inside
	s.total += total
}

func (s *piSink) estimate() (float64, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.total == 0 {
		return 0, 0
	}
	return 4 * float64(s.inside) / float64(s.total), s.total
}

// CreateSideTask loads context into host memory (here: the RNG).
func (t *piTask) CreateSideTask(ctx *sidetask.Ctx) error {
	t.rng = rand.New(rand.NewSource(ctx.Rng.Int63()))
	return nil
}

// InitSideTask moves the working set to GPU memory.
func (t *piTask) InitSideTask(ctx *sidetask.Ctx) error {
	return ctx.GPU.AllocMem(ctx.Profile.MemBytes)
}

// RunNextStep draws one batch of samples (real computation) and charges the
// profiled kernel cost to the simulated GPU.
func (t *piTask) RunNextStep(ctx *sidetask.Ctx) error {
	ctx.HostWork(ctx.Profile.HostOverhead)
	var inside int64
	for i := 0; i < t.samplesPerStep; i++ {
		x, y := t.rng.Float64(), t.rng.Float64()
		if x*x+y*y <= 1 {
			inside++
		}
	}
	t.sink.add(inside, int64(t.samplesPerStep))
	return ctx.ExecStepKernel()
}

// StopSideTask releases GPU memory.
func (t *piTask) StopSideTask(ctx *sidetask.Ctx) error {
	ctx.GPU.FreeMem(ctx.Profile.MemBytes)
	return nil
}

func main() {
	// The task's performance characteristics: a light compute kernel with
	// a small footprint. In a real deployment these numbers come from the
	// automated profiler — demonstrated below.
	profile := model.TaskProfile{
		Name:          "montecarlo-pi",
		Kind:          model.KindGraph,
		StepTime:      12 * time.Millisecond,
		StepJitter:    0.08,
		MemBytes:      1 * model.GiB,
		Demand:        0.5,
		Weight:        0.25,
		HostOverhead:  800 * time.Microsecond,
		CreateTime:    200 * time.Millisecond,
		InitTime:      100 * time.Millisecond,
		SpeedServerII: 0.5,
		SpeedCPU:      0.05,
	}
	sink := &piSink{}
	build := func(seed int64) sidetask.Iterative {
		return &piTask{samplesPerStep: 20000, sink: sink}
	}

	// Step ➋ of the paper's workflow: the automated profiler measures the
	// implementation before submission.
	prof, err := profiler.Profile(func(seed int64) (*sidetask.Harness, error) {
		return sidetask.NewIterativeHarness("pi-profilee", profile, build(seed), seed), nil
	}, profiler.Options{Seed: 7})
	if err != nil {
		log.Fatalf("profiler: %v", err)
	}
	fmt.Printf("automated profile: mem %.2f GB, per-step %.1fms\n",
		float64(prof.MemBytes)/float64(model.GiB), prof.StepTime.Seconds()*1000)

	// Steps ➌–➏: submit to the manager and serve during bubbles.
	cfg := freeride.DefaultConfig()
	cfg.Epochs = 12
	tNo, err := freeride.BaselineTrainTime(cfg)
	if err != nil {
		log.Fatalf("baseline: %v", err)
	}
	sess, err := freeride.NewSession(cfg)
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	if err := sess.RegisterCustom(profile, build); err != nil {
		log.Fatalf("register: %v", err)
	}
	n, err := sess.SubmitEverywhere(profile)
	if err != nil {
		log.Fatalf("submit: %v", err)
	}
	res, err := sess.Run()
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	rep := res.CostReport(tNo)

	pi, samples := sink.estimate()
	fmt.Printf("\nmontecarlo-pi ran on %d workers: %d steps, %d samples\n",
		n, res.TotalSteps(), samples)
	fmt.Printf("pi ≈ %.5f (error %.5f)\n", pi, pi-3.14159265)
	fmt.Printf("training overhead I = %.2f%%, cost savings S = %.2f%%\n",
		100*rep.I, 100*rep.S)
}
