// Faulttolerance: crash a GPU worker mid-run and watch the self-healing
// manager recover — the lease failure detector declares the worker dead,
// the lost side task is re-placed onto an eligible peer via the same
// Algorithm-1 admission filter, and it resumes from its last pause-time
// checkpoint instead of from step zero.
package main

import (
	"fmt"
	"log"

	"freeride"
	"freeride/internal/model"
	"freeride/internal/simfault"
)

func main() {
	cfg := freeride.DefaultConfig()
	cfg.Epochs = 16

	// A non-nil fault schedule wires the fault-injection plane and enables
	// the lease failure detector. One event: hard-crash worker 0 (its
	// containers die, its state drops, its control link closes) a third of
	// the way through training.
	tNo, err := freeride.BaselineTrainTime(cfg)
	if err != nil {
		log.Fatalf("baseline: %v", err)
	}
	cfg.Faults = &simfault.Schedule{Events: []simfault.Event{
		{At: tNo / 3, Kind: simfault.KindCrashWorker, Worker: 0},
	}}

	sess, err := freeride.NewSession(cfg)
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	if _, err := sess.SubmitEverywhere(model.ResNet18); err != nil {
		log.Fatalf("submit: %v", err)
	}
	res, err := sess.Run()
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	rep := res.CostReport(tNo)

	st := res.ManagerStats
	fmt.Printf("injected faults:        %d (crash-worker)\n", res.FaultStats.Count(simfault.KindCrashWorker))
	fmt.Printf("workers lost:           %d\n", st.WorkersLost)
	fmt.Printf("tasks restarted:        %d\n", st.RestartedTasks)
	fmt.Printf("re-placements:          %d\n", st.Replacements)
	fmt.Printf("tasks parked:           %d\n", st.ParkedTasks)
	fmt.Printf("unrecovered bubble work: %.2fs\n", st.LostWork.Seconds())
	for _, tw := range res.Tasks {
		mark := ""
		if tw.Restarts > 0 {
			mark = fmt.Sprintf("  <- recovered (%d restart)", tw.Restarts)
		}
		fmt.Printf("  %-12s steps=%-4d exited=%v%s\n", tw.Name, tw.Steps, tw.Exited, mark)
	}
	fmt.Printf("\ntraining time increase I: %.2f%% (recovery must not slow the main job)\n", 100*rep.I)
	fmt.Printf("side-task steps harvested: %d\n", res.TotalSteps())
}
