// Dynamicbubbles: drift the bubble profile mid-run and watch the manager
// re-plan — a third of the way through training, stage 2 freezes its
// parameters, which grows its own bubbles and shrinks every other stage's.
// The paper's profile-once design keeps serving the stale plan: the task
// admitted onto its now-starved home stage sits in bubbles too small to
// step. With online re-profiling armed, the manager's per-stage drift
// detector notices the shift in the reported supply, demotes the task
// through the same checkpoint-restart cycle a crash uses, and re-admits it
// into the grown bubbles on the frozen stage.
package main

import (
	"fmt"
	"log"
	"time"

	"freeride"
	"freeride/internal/bubble"
	"freeride/internal/model"
)

func main() {
	cfg := freeride.DefaultConfig()
	cfg.Method = freeride.MethodIterative
	cfg.Epochs = 16

	tNo, err := freeride.BaselineTrainTime(cfg)
	if err != nil {
		log.Fatalf("baseline: %v", err)
	}
	// One drift event: freeze stage 2 a third of the way through training.
	cfg.Drift = &bubble.DriftSchedule{Events: []bubble.DriftEvent{
		{At: tNo / 3, Kind: bubble.DriftFreeze, Stage: 2, Magnitude: 1},
	}}

	// Profile-once arm: the drift reshapes the reported bubbles but nobody
	// is watching — the one-shot profile stays authoritative forever.
	once, err := runArm(cfg, tNo)
	if err != nil {
		log.Fatalf("profile-once arm: %v", err)
	}
	// Online arm: same drift, detector armed.
	det := bubble.FastDetector()
	cfg.Replan = &det
	online, err := runArm(cfg, tNo)
	if err != nil {
		log.Fatalf("online arm: %v", err)
	}

	st := online.ManagerStats
	fmt.Printf("drift: freeze stage 2 at %.1fs (bubbles ×2 there, ÷2 elsewhere)\n\n", (tNo / 3).Seconds())
	fmt.Printf("%-28s %12s %12s\n", "", "profile-once", "online")
	fmt.Printf("%-28s %11.2fs %11.2fs\n", "harvested GPU time", harvested(once).Seconds(), harvested(online).Seconds())
	fmt.Printf("%-28s %11.2fs %11.2fs\n", "stale-admission wait", staleWait(once).Seconds(), staleWait(online).Seconds())
	fmt.Printf("%-28s %11.2fs %11.2fs\n", "training time", once.TrainTime.Seconds(), online.TrainTime.Seconds())
	fmt.Printf("\nonline re-planning activity:\n")
	fmt.Printf("  drift detections:  %d\n", st.DriftEvents)
	fmt.Printf("  re-plans:          %d\n", st.Replans)
	fmt.Printf("  demotions:         %d\n", st.Demotions)
	fmt.Printf("  revivals:          %d\n", st.Revivals)
	fmt.Printf("  stale admissions:  %d\n", st.StaleAdmissions)
	for _, tw := range online.Tasks {
		mark := ""
		if tw.Restarts > 0 {
			mark = fmt.Sprintf("  <- re-planned (%d demotion)", tw.Restarts)
		}
		fmt.Printf("  %-12s steps=%-4d%s\n", tw.Name, tw.Steps, mark)
	}
	fmt.Printf("\nonline gain: %.2fs of GPU time the stale plan left on the table\n",
		(harvested(online) - harvested(once)).Seconds())
}

// runArm runs one Graph-SGD side task (memory-heavy: excluded from stage 0,
// homed on stage 1 — the stage the freeze starves) under cfg.
func runArm(cfg freeride.Config, tNo time.Duration) (*freeride.Result, error) {
	sess, err := freeride.NewSession(cfg)
	if err != nil {
		return nil, err
	}
	if err := sess.Submit(model.GraphSGD, 0); err != nil {
		return nil, err
	}
	res, err := sess.Run()
	if err != nil {
		return nil, err
	}
	res.CostReport(tNo)
	return res, nil
}

func harvested(res *freeride.Result) time.Duration {
	var sum time.Duration
	for _, tw := range res.Tasks {
		sum += tw.KernelTime
	}
	return sum
}

func staleWait(res *freeride.Result) time.Duration {
	var sum time.Duration
	for _, tw := range res.Tasks {
		sum += tw.InsuffWait
	}
	return sum
}
