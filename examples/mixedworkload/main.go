// The paper's mixed workload (§6.2): four different side tasks — PageRank,
// ResNet18, Image processing and VGG19 — one per GPU, matching the stage
// assignment of the paper (stages 0–3 respectively). Algorithm 1's memory
// filter plus least-loaded placement reproduces that assignment from the
// submission order alone. Paper result: 10.1% savings at 1.1% overhead.
package main

import (
	"fmt"
	"log"

	"freeride"
	"freeride/internal/model"
)

func main() {
	cfg := freeride.DefaultConfig()
	cfg.Epochs = 16

	tNo, err := freeride.BaselineTrainTime(cfg)
	if err != nil {
		log.Fatalf("baseline: %v", err)
	}

	sess, err := freeride.NewSession(cfg)
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	mix := []model.TaskProfile{model.PageRank, model.ResNet18, model.Image, model.VGG19}
	for i, task := range mix {
		if err := sess.Submit(task, i); err != nil {
			log.Fatalf("submit %s: %v", task.Name, err)
		}
	}

	res, err := sess.Run()
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	rep := res.CostReport(tNo)

	fmt.Println("mixed workload placement (Algorithm 1):")
	for _, tw := range res.Tasks {
		fmt.Printf("  %-12s -> stage %d (%6d steps)\n", tw.Name, tw.Worker, tw.Steps)
	}
	fmt.Printf("\ntime increase I: %.2f%%  (paper: 1.1%%)\n", 100*rep.I)
	fmt.Printf("cost savings  S: %.2f%%  (paper: 10.1%%)\n", 100*rep.S)
}
