// Servingharvest: drive the pipeline with an open-loop inference workload
// and harvest its bubbles. A serving pipeline idles differently from a
// training one: each request batch pays a fill cascade (stage s waits
// s·(FP+comm) for its first micro-batch), a drain tail (the mirror image),
// and — whenever the arrival process leaves the pipeline empty — whole
// inter-batch gaps. Side tasks reclaim all three, but serving adds a
// constraint training doesn't have: a p99 latency SLO. The manager's SLO
// admission guard refuses to start a side task into a bubble too short to
// fit a step with margin; tightening the guard trades harvested GPU-seconds
// against SLO violations on the same arrival trace.
package main

import (
	"fmt"
	"log"
	"time"

	"freeride"
	"freeride/internal/model"
)

func main() {
	fmt.Println("serving harvest: nanogpt-3.6b, 4 stages, bursty arrivals at 2 req/s, 6s SLO")
	fmt.Printf("\n%-8s %8s %8s %8s %9s %9s %8s\n",
		"guard", "p99", "base_p99", "viol", "deferred", "harvest", "steps")

	// The no-side-task floor: the same trace served with nothing co-located.
	base := runCell(freeride.MethodNone, 0)
	for _, guard := range []float64{0, 1, 4} {
		res := runCell(freeride.MethodIterative, guard)
		st := res.ServingStats
		fmt.Printf("%-8g %7.2fs %7.2fs %8d %9d %8.2fs %8d\n",
			guard, st.P99.Seconds(), base.ServingStats.P99.Seconds(),
			st.Violations, res.ManagerStats.SLODeferred,
			harvested(res).Seconds(), res.TotalSteps())
	}

	fmt.Println("\nevery guard arm shares the same seeded arrivals, so the columns are")
	fmt.Println("directly comparable: guard 0 admits into every bubble the causal gap")
	fmt.Println("predictor announces (mispredicted bursts overrun into batch compute),")
	fmt.Println("while a tight guard defers short-bubble fits and gives harvest back.")
}

func runCell(method freeride.Method, guard float64) *freeride.Result {
	cfg := freeride.DefaultConfig()
	cfg.Method = method
	cfg.Epochs = 16 // scales the trace: 6 requests per epoch knob
	cfg.Serving = &freeride.ServingConfig{
		Trace:      freeride.TraceBursty,
		Rate:       2,
		Burstiness: 3,
		SLO:        6 * time.Second,
		Guard:      guard,
	}
	sess, err := freeride.NewSession(cfg)
	if err != nil {
		log.Fatalf("guard %g: %v", guard, err)
	}
	if method != freeride.MethodNone {
		if _, err := sess.SubmitEverywhere(model.ResNet18); err != nil {
			log.Fatalf("guard %g: submit: %v", guard, err)
		}
	}
	res, err := sess.Run()
	if err != nil {
		log.Fatalf("guard %g: run: %v", guard, err)
	}
	return res
}

func harvested(res *freeride.Result) time.Duration {
	var sum time.Duration
	for _, tw := range res.Tasks {
		sum += tw.KernelTime
	}
	return sum
}
