// Image-processing side task (the paper's nvJPEG-derived resize+watermark
// workload) compared across all four co-location methods. The memory
// footprint (9.6 GB) only fits the bubbles of stages 2 and 3, so roughly
// half the fleet's bubble time is unusable — visible in the step counts.
package main

import (
	"fmt"
	"log"

	"freeride"
	"freeride/internal/model"
)

func main() {
	cfg := freeride.DefaultConfig()
	cfg.Epochs = 12

	tNo, err := freeride.BaselineTrainTime(cfg)
	if err != nil {
		log.Fatalf("baseline: %v", err)
	}
	fmt.Printf("baseline: %.2fs | image task fits stages %v only\n\n",
		tNo.Seconds(), mustEligible(cfg))

	fmt.Printf("%-22s %10s %10s %10s\n", "method", "I", "S", "images")
	for _, method := range []freeride.Method{
		freeride.MethodIterative,
		freeride.MethodImperative,
		freeride.MethodMPS,
		freeride.MethodNaive,
	} {
		c := cfg
		c.Method = method
		sess, err := freeride.NewSession(c)
		if err != nil {
			log.Fatalf("session: %v", err)
		}
		if _, err := sess.SubmitEverywhere(model.Image); err != nil {
			log.Fatalf("submit: %v", err)
		}
		res, err := sess.Run()
		if err != nil {
			log.Fatalf("run: %v", err)
		}
		rep := res.CostReport(tNo)
		fmt.Printf("%-22s %9.2f%% %9.2f%% %10d\n",
			method.String(), 100*rep.I, 100*rep.S, res.TotalSteps())
	}
	fmt.Println("\nFreeRide methods harvest bubbles with ~1% overhead; direct MPS and")
	fmt.Println("naive co-location run continuously and slow training 10-50%.")
}

func mustEligible(cfg freeride.Config) []int {
	sess, err := freeride.NewSession(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return sess.EligibleStages(model.Image)
}
