// Schedulezoo: run the same training job under every pipeline schedule and
// watch the harvestable bubble supply shrink as the schedule improves. 1F1B
// and GPipe idle (S-1)(FP+BP) per stage; interleaving splits each device into
// V virtual chunks and divides the fill overhead by V; the zero-bubble B/W
// split fills the cooldown with deferred weight-gradient work, leaving only
// the (S-1)·FP warmup cascade — at the price of GPipe-level activation
// memory. FreeRide's harvest tracks that budget down: the better the
// schedule, the less there is for side tasks to reclaim.
package main

import (
	"fmt"
	"log"
	"time"

	"freeride"
	"freeride/internal/model"
	"freeride/internal/pipeline"
)

func main() {
	fmt.Println("schedule zoo: nanogpt-3.6b, 4 stages, 4 micro-batches, ResNet18 everywhere")
	fmt.Printf("\n%-12s %10s %10s %10s %10s %8s\n",
		"schedule", "est", "profiled", "harvest", "train", "tasks")
	for _, kind := range model.AllSchedules() {
		cfg := freeride.DefaultConfig()
		cfg.Method = freeride.MethodIterative
		cfg.Epochs = 16
		cfg.Schedule = kind // interleaved defaults to 2 virtual chunks/device

		est := cfg.LLM.BubbleRateEstimate(kind, cfg.Stages, cfg.MicroBatches, virtualFor(kind))
		sess, err := freeride.NewSession(cfg)
		if err != nil {
			log.Fatalf("%v: %v", kind, err)
		}
		profiled := sess.Profile.BubbleRate()
		n, err := sess.SubmitEverywhere(model.ResNet18)
		if err != nil {
			log.Fatalf("%v: submit: %v", kind, err)
		}
		res, err := sess.Run()
		if err != nil {
			log.Fatalf("%v: run: %v", kind, err)
		}
		fmt.Printf("%-12s %9.1f%% %9.1f%% %9.2fs %9.2fs %8d\n",
			kind, 100*est, 100*profiled, harvested(res).Seconds(),
			res.TrainTime.Seconds(), n)
	}
	fmt.Println("\nthe closed forms (est) come from the schedule generators' fill")
	fmt.Println("overhead: (S-1)(FP+BP) for 1F1B/GPipe, divided by V when")
	fmt.Println("interleaved (a lower bound under chunk contention), and only the")
	fmt.Println("(S-1)·FP warmup for zero-bubble. Harvest falls with the bubble")
	fmt.Println("ratio — near zero bubbles, harvesting stops paying.")
}

// virtualFor mirrors the session default: interleaved runs 2 chunks/device.
func virtualFor(kind pipeline.ScheduleKind) int {
	if kind == pipeline.ScheduleInterleaved {
		return 2
	}
	return 1
}

func harvested(res *freeride.Result) time.Duration {
	var sum time.Duration
	for _, tw := range res.Tasks {
		sum += tw.KernelTime
	}
	return sum
}
