// Graph analytics side tasks: PageRank and SGD matrix factorization (the
// paper's Gardenia-derived workloads) run real algorithm iterations inside
// training bubbles. This example also shows the per-task accounting that
// feeds the paper's Figure 9 breakdown.
package main

import (
	"fmt"
	"log"

	"freeride"
	"freeride/internal/model"
)

func main() {
	cfg := freeride.DefaultConfig()
	cfg.Epochs = 16
	// WorkSmall (the default) runs genuine PageRank power iterations over a
	// synthetic power-law graph, and genuine SGD factorization passes over
	// planted low-rank ratings, charged to the simulated GPU at their
	// profiled kernel cost.

	tNo, err := freeride.BaselineTrainTime(cfg)
	if err != nil {
		log.Fatalf("baseline: %v", err)
	}

	sess, err := freeride.NewSession(cfg)
	if err != nil {
		log.Fatalf("session: %v", err)
	}

	// Graph SGD (3.5 GB) misses stage 0 (less than 3 GB available there),
	// so it lands on stages 1-3 via Algorithm 1's memory filter; PageRank
	// (2.5 GB) fits everywhere and takes the remaining stage-0 worker.
	// Each worker serves one task at a time (paper Alg. 2), so one
	// instance per worker keeps them all busy.
	n, err := sess.SubmitEverywhere(model.GraphSGD)
	if err != nil {
		log.Fatalf("submit graphsgd: %v", err)
	}
	fmt.Printf("%-9s -> %d workers (eligible stages %v)\n",
		model.GraphSGD.Name, n, sess.EligibleStages(model.GraphSGD))
	if err := sess.Submit(model.PageRank, 0); err != nil {
		log.Fatalf("submit pagerank: %v", err)
	}
	fmt.Printf("%-9s -> 1 worker (stage 0)\n", model.PageRank.Name)

	res, err := sess.Run()
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	rep := res.CostReport(tNo)

	fmt.Printf("\ntime increase I: %.2f%%   cost savings S: %.2f%%\n", 100*rep.I, 100*rep.S)
	fmt.Println("\nper-instance harvest:")
	for _, tw := range res.Tasks {
		fmt.Printf("  %-12s stage %d: %6d iterations, GPU %7.2fs, skipped-tail %5.2fs\n",
			tw.Name, tw.Worker, tw.Steps, tw.KernelTime.Seconds(), tw.InsuffWait.Seconds())
	}
	st := res.ManagerStats
	fmt.Printf("\nmanager: served %d of %d bubbles (%.1f%% of %.1fs bubble time)\n",
		st.BubblesServed, st.BubblesAdded,
		100*float64(st.BubbleTimeServed)/float64(st.BubbleTimeTotal),
		st.BubbleTimeTotal.Seconds())
}
