// Quickstart: harvest pipeline-training bubbles with one ResNet18 training
// side task and print the paper's two headline metrics — the training time
// increase I (~1%) and the dollar cost savings S (~6-8%).
package main

import (
	"fmt"
	"log"

	"freeride"
	"freeride/internal/model"
)

func main() {
	// The paper's principal setup: nanoGPT-3.6B on a 4-stage pipeline with
	// 4 micro-batches, trained for 16 epochs.
	cfg := freeride.DefaultConfig()
	cfg.Epochs = 16

	// First measure the baseline: training alone, no side tasks.
	tNo, err := freeride.BaselineTrainTime(cfg)
	if err != nil {
		log.Fatalf("baseline: %v", err)
	}
	fmt.Printf("baseline training time: %.2fs\n", tNo.Seconds())

	// Assemble the full system: simulated 4-GPU server, pipeline trainer,
	// bubble profiler+reporter, side task manager and per-GPU workers.
	sess, err := freeride.NewSession(cfg)
	if err != nil {
		log.Fatalf("session: %v", err)
	}

	// Submit ResNet18 training to every GPU whose bubbles can hold its
	// 2.63 GB footprint (all four stages, per the paper's Fig. 1b).
	workers, err := sess.SubmitEverywhere(model.ResNet18)
	if err != nil {
		log.Fatalf("submit: %v", err)
	}
	fmt.Printf("resnet18 placed on %d workers\n", workers)

	res, err := sess.Run()
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	rep := res.CostReport(tNo)

	fmt.Printf("\ntraining with side tasks: %.2fs\n", rep.TWith.Seconds())
	fmt.Printf("time increase I:  %.2f%%  (paper: ~0.9%%)\n", 100*rep.I)
	fmt.Printf("cost savings  S:  %.2f%%  (paper: ~6.4%%)\n", 100*rep.S)
	fmt.Printf("side-task steps harvested from bubbles: %d\n", res.TotalSteps())
}
