// Resource limits (paper §4.5, Figure 8): deploy two misbehaving side tasks
// against a worker and watch FreeRide's two enforcement mechanisms fire —
// the framework-enforced SIGKILL after the grace period for a task that
// will not yield the GPU, and the MPS memory cap's OOM-kill for a task that
// leaks GPU memory.
package main

import (
	"fmt"
	"log"

	"freeride/internal/experiments"
	"freeride/internal/sidetask"
)

func main() {
	res, err := experiments.RunFigure8(experiments.Options{
		Epochs:    4,
		WorkScale: sidetask.WorkNone,
		Seed:      1,
	})
	if err != nil {
		log.Fatalf("figure 8 scenarios: %v", err)
	}
	fmt.Print(res.Render())

	fmt.Println("\nWhat happened:")
	fmt.Println(" (a) The hog task kept a 10s kernel on the GPU after its bubble ended.")
	fmt.Println("     With enforcement, the worker checked the GPU after the 300ms grace")
	fmt.Printf("     period and SIGKILLed the container (%d kill): the kernel aborted and\n", res.GraceKills)
	fmt.Println("     the SM occupancy dropped to zero. Without enforcement it kept running.")
	fmt.Println(" (b) The leaky task allocated 512 MiB per step. Under the 8 GB MPS cap the")
	fmt.Println("     allocation failed at the limit, killing only that task and freeing its")
	fmt.Println("     memory; uncapped, it grew past 8 GB unchecked.")
}
