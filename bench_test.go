// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment harness end-to-end and
// reports the headline quantities as custom metrics, so `go test -bench=.`
// doubles as the reproduction run. Absolute wall-clock ns/op measures the
// simulator, not the paper's testbed; the custom metrics are the reproduced figures.
package freeride_test

import (
	"flag"
	"testing"

	"freeride"
	"freeride/internal/experiments"
	"freeride/internal/sidetask"
)

// -rebalance-oracle reruns the benchmarks under the GPU scheduler's
// full-recompute oracle pass instead of the incremental one; the reported
// metrics must not move (CI smokes the Table 2 grid this way).
var rebalanceOracle = flag.Bool("rebalance-oracle", false,
	"run grids under the full-rebalance differential oracle")

func benchOpts() experiments.Options {
	return experiments.Options{
		Epochs: 8, WorkScale: sidetask.WorkNone, Seed: 1,
		FullRebalance: *rebalanceOracle,
	}
}

// BenchmarkTable1 regenerates paper Table 1: side-task throughput on
// bubbles vs Server-II vs CPU.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var minRatio, maxRatio float64
		for j, row := range res.Rows {
			r := row.RatioII()
			if j == 0 || r < minRatio {
				minRatio = r
			}
			if r > maxRatio {
				maxRatio = r
			}
		}
		b.ReportMetric(minRatio, "min-x-vs-serverII")
		b.ReportMetric(maxRatio, "max-x-vs-serverII")
	}
}

// BenchmarkTable2 regenerates paper Table 2: I and S for all four methods
// across the six tasks and the mixed workload.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		meanI, meanS := res.Averages(freeride.MethodIterative)
		b.ReportMetric(100*meanI, "iterative-I-%")
		b.ReportMetric(100*meanS, "iterative-S-%")
		mixed, _ := res.Row("mixed", freeride.MethodIterative)
		b.ReportMetric(100*mixed.S, "mixed-S-%")
	}
}

// BenchmarkFigure1 regenerates Figure 1's epoch timeline and memory chart.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var rate float64
		span := res.EpochEnd - res.EpochStart
		for _, bs := range res.Bubbles {
			rate += float64(bs.Total()) / float64(span)
		}
		b.ReportMetric(100*rate/float64(len(res.Bubbles)), "bubble-rate-%")
	}
}

// BenchmarkFigure2 regenerates Figure 2's bubble statistics.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Stats {
			if s.MicroBatch == 4 && s.Model == "nanogpt-1.2b" {
				b.ReportMetric(100*s.BubbleRate, "rate-1.2B-%")
			}
			if s.MicroBatch == 8 {
				b.ReportMetric(100*s.BubbleRate, "rate-mb8-%")
			}
		}
	}
}

// BenchmarkFigure7BatchSize regenerates Figure 7(a,b).
func BenchmarkFigure7BatchSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure7BatchSize(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var maxI float64
		for _, row := range res.Rows {
			if row.I > maxI {
				maxI = row.I
			}
		}
		b.ReportMetric(100*maxI, "max-I-%")
	}
}

// BenchmarkFigure7ModelSize regenerates Figure 7(c,d).
func BenchmarkFigure7ModelSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure7ModelSize(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Rows)), "rows")
	}
}

// BenchmarkFigure7MicroBatch regenerates Figure 7(e,f).
func BenchmarkFigure7MicroBatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure7MicroBatch(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Rows)), "rows")
	}
}

// BenchmarkFigure8 regenerates Figure 8's resource-limit demonstrations.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.GraceKills), "grace-kills")
	}
}

// BenchmarkFigure9 regenerates Figure 9's bubble-time breakdown.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Task == "pagerank" {
				b.ReportMetric(100*row.Runtime, "pagerank-runtime-%")
			}
			if row.Task == "vgg19" {
				b.ReportMetric(100*row.OOM, "vgg19-oom-%")
			}
		}
	}
}

// BenchmarkAblationGracePeriod measures how the framework-enforced grace
// period affects overhead (DESIGN.md ablation).
func BenchmarkAblationGracePeriod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationGrace(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(100*row.I, "I-"+row.Label+"-%")
		}
	}
}

// BenchmarkAblationRPCLatency sweeps the control-plane latency.
func BenchmarkAblationRPCLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationRPCLatency(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(float64(row.Steps), "steps-"+row.Label)
		}
	}
}

// BenchmarkAblationSafetyMargin sweeps the reporter's bubble safety margin.
func BenchmarkAblationSafetyMargin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationSafetyMargin(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(100*row.S, "S-"+row.Label+"-%")
		}
	}
}
