// Command freeride-workerd is the live-mode GPU node daemon: it hosts the
// simulated 4-GPU server — the pipeline-parallel training job and one side
// task worker per GPU — and exposes the workers to freeride-managerd over
// TCP. Training starts after -start-delay; when it completes, the daemon
// prints the harvest summary and exits.
//
// Example:
//
//	freeride-workerd -manager 127.0.0.1:7070 -ports 7081,7082,7083,7084 -epochs 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"freeride/internal/livemode"
	"freeride/internal/model"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "freeride-workerd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("freeride-workerd", flag.ContinueOnError)
	manager := fs.String("manager", "127.0.0.1:7070", "manager daemon address")
	ports := fs.String("ports", "7081,7082,7083,7084", "comma-separated worker listen ports (one per stage)")
	llmName := fs.String("model", "3.6b", "model to train")
	epochs := fs.Int("epochs", 4, "training epochs")
	mbs := fs.Int("microbatches", 4, "micro-batches per epoch")
	delay := fs.Duration("start-delay", 3*time.Second, "delay before training starts (lets the manager dial in)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	llm, err := model.LLMByName(*llmName)
	if err != nil {
		return err
	}
	var addrs []string
	for _, p := range strings.Split(*ports, ",") {
		addrs = append(addrs, ":"+strings.TrimSpace(p))
	}
	logger := log.New(os.Stdout, "workerd  ", log.Ltime|log.Lmicroseconds)

	node, err := livemode.StartNode(livemode.NodeConfig{
		ListenAddrs: addrs,
		ManagerAddr: *manager,
		Model:       llm,
		MicroBatch:  *mbs,
		Epochs:      *epochs,
		StartDelay:  *delay,
		Logf:        func(f string, a ...any) { logger.Printf(f, a...) },
	})
	if err != nil {
		return err
	}
	defer node.Close()
	logger.Printf("workers listening on %s", strings.Join(node.WorkerAddrs(), ", "))

	<-node.TrainDone()
	time.Sleep(500 * time.Millisecond) // let the final pause land
	if err := node.Trainer().Err(); err != nil {
		return fmt.Errorf("training failed: %w", err)
	}
	logger.Printf("training complete in %.2fs", node.Trainer().TotalTime().Seconds())
	for i, w := range node.Workers() {
		st := w.Stats()
		logger.Printf("worker%d: %d created, %d starts, %d pauses, %d kills",
			i, st.Created, st.Starts, st.Pauses, st.GraceKills+st.InitKills)
	}
	return nil
}
