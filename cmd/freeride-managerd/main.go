// Command freeride-managerd is the live-mode side task manager daemon: it
// listens for bubble reports and notifications from a GPU node
// (freeride-workerd), dials the node's per-stage workers, and runs the
// paper's Algorithms 1 and 2 over real TCP.
//
// Example (after starting freeride-workerd):
//
//	freeride-managerd -listen :7070 \
//	  -workers 127.0.0.1:7081,127.0.0.1:7082,127.0.0.1:7083,127.0.0.1:7084 \
//	  -tasks resnet18,pagerank
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"freeride/internal/core"
	"freeride/internal/livemode"
	"freeride/internal/model"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "freeride-managerd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("freeride-managerd", flag.ContinueOnError)
	listen := fs.String("listen", ":7070", "address for node notifications and bubble reports")
	workers := fs.String("workers", "", "comma-separated worker endpoints in stage order")
	tasks := fs.String("tasks", "", "comma-separated side tasks to submit")
	llmName := fs.String("model", "3.6b", "model trained on the node (for memory accounting)")
	mbs := fs.Int("microbatches", 4, "micro-batches on the node")
	retry := fs.Duration("retry", 20*time.Second, "how long to keep retrying worker connections")
	managerMode := fs.String("manager", "event", "Algorithm-2 driver: event, polling or immediate")
	lease := fs.Duration("lease", 0, "worker lease for the failure detector; tasks on a worker silent for a full lease are re-placed from their last checkpoint (0 disables recovery)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	llm, err := model.LLMByName(*llmName)
	if err != nil {
		return err
	}
	mode, err := core.ParseManagerMode(*managerMode)
	if err != nil {
		return err
	}
	logger := log.New(os.Stdout, "managerd ", log.Ltime|log.Lmicroseconds)

	d, err := livemode.StartManager(livemode.ManagerConfig{
		ListenAddr: *listen,
		Model:      llm,
		MicroBatch: *mbs,
		Mode:       mode,
		Lease:      *lease,
		Logf:       func(f string, a ...any) { logger.Printf(f, a...) },
	})
	if err != nil {
		return err
	}
	defer d.Close()
	logger.Printf("listening on %s", d.Addr())

	if *workers != "" {
		addrs := strings.Split(*workers, ",")
		deadline := time.Now().Add(*retry)
		for {
			err := d.ConnectWorkers(addrs)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("connect workers: %w", err)
			}
			logger.Printf("workers not ready (%v); retrying...", err)
			time.Sleep(time.Second)
		}
	}
	if *tasks != "" {
		d.SubmitTasks(strings.Split(*tasks, ","))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	st := d.Manager.Stats()
	logger.Printf("shutting down: %d bubbles received (%.1fs), %d served, %d RPCs",
		st.BubblesAdded, st.BubbleTimeTotal.Seconds(), st.BubblesServed, st.RPCs)
	return nil
}
