package main

import "testing"

func TestRunIterativeQuick(t *testing.T) {
	if err := run([]string{"-epochs", "4", "-tasks", "pagerank", "-realwork=false"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunMixedQuick(t *testing.T) {
	if err := run([]string{"-epochs", "3", "-tasks", "pagerank,resnet18,image,vgg19", "-mixed", "-realwork=false"}); err != nil {
		t.Fatalf("run mixed: %v", err)
	}
}

func TestRunRejectsUnknownMethod(t *testing.T) {
	if err := run([]string{"-method", "quantum"}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestRunRejectsUnknownTask(t *testing.T) {
	if err := run([]string{"-epochs", "2", "-tasks", "bitcoin"}); err == nil {
		t.Fatal("unknown task accepted")
	}
}

func TestRunRejectsUnknownModel(t *testing.T) {
	if err := run([]string{"-model", "13b"}); err == nil {
		t.Fatal("unknown model accepted")
	}
}
