// Command freeride-sim runs one co-location experiment on the simulated
// testbed and prints the paper's metrics: training time increase I and
// dollar cost savings S.
//
// Example:
//
//	freeride-sim -method iterative -tasks resnet18 -model 3.6b -epochs 32
//	freeride-sim -method mps -tasks graphsgd
//	freeride-sim -method iterative -tasks pagerank,resnet18,image,vgg19 -mixed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"freeride"
	"freeride/internal/model"
	"freeride/internal/sidetask"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "freeride-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("freeride-sim", flag.ContinueOnError)
	method := fs.String("method", "iterative", "co-location method: iterative|imperative|mps|naive")
	tasks := fs.String("tasks", "resnet18", "comma-separated side tasks: resnet18,resnet50,vgg19,pagerank,graphsgd,image")
	llmName := fs.String("model", "3.6b", "main model: 1.2b|3.6b|6b")
	epochs := fs.Int("epochs", 32, "training epochs")
	mbs := fs.Int("microbatches", 4, "micro-batches per epoch")
	seed := fs.Int64("seed", 1, "simulation seed")
	mixed := fs.Bool("mixed", false, "place one instance per task (mixed workload) instead of one per eligible worker")
	realWork := fs.Bool("realwork", true, "run real side-task computation (PageRank, SGD-MF, NN training, image ops)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := freeride.DefaultConfig()
	cfg.Epochs = *epochs
	cfg.MicroBatches = *mbs
	cfg.Seed = *seed
	if !*realWork {
		cfg.WorkScale = sidetask.WorkNone
	}
	llm, err := model.LLMByName(*llmName)
	if err != nil {
		return err
	}
	cfg.LLM = llm
	switch *method {
	case "iterative":
		cfg.Method = freeride.MethodIterative
	case "imperative":
		cfg.Method = freeride.MethodImperative
	case "mps":
		cfg.Method = freeride.MethodMPS
	case "naive":
		cfg.Method = freeride.MethodNaive
	default:
		return fmt.Errorf("unknown method %q", *method)
	}

	fmt.Printf("measuring baseline (no side tasks)...\n")
	tNo, err := freeride.BaselineTrainTime(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("T_noSideTask = %.2fs (%d epochs of %s)\n\n", tNo.Seconds(), cfg.Epochs, llm.Name)

	sess, err := freeride.NewSession(cfg)
	if err != nil {
		return err
	}
	names := strings.Split(*tasks, ",")
	for i, name := range names {
		profile, err := model.TaskByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		if *mixed {
			stage := i % cfg.Stages
			if err := sess.Submit(profile, stage); err != nil {
				return fmt.Errorf("submit %s: %w", profile.Name, err)
			}
			fmt.Printf("submitted %-10s (1 instance)\n", profile.Name)
		} else {
			n, err := sess.SubmitEverywhere(profile)
			if err != nil {
				return fmt.Errorf("submit %s: %w", profile.Name, err)
			}
			fmt.Printf("submitted %-10s on %d workers (stages %v)\n",
				profile.Name, n, sess.EligibleStages(profile))
		}
	}

	fmt.Printf("\nrunning co-located training (%s)...\n", cfg.Method)
	res, err := sess.Run()
	if err != nil {
		return err
	}
	rep := res.CostReport(tNo)

	fmt.Printf("\n== results ==\n")
	fmt.Printf("T_withSideTasks    = %.2fs\n", rep.TWith.Seconds())
	fmt.Printf("time increase I    = %.2f%%\n", 100*rep.I)
	fmt.Printf("training cost      = $%.4f (baseline $%.4f)\n", rep.CWith, rep.CNo)
	fmt.Printf("side-task value    = $%.4f (Server-II replacement cost)\n", rep.CSideTasks)
	fmt.Printf("cost savings S     = %.2f%%\n", 100*rep.S)
	fmt.Printf("side-task steps    = %d\n", res.TotalSteps())
	for _, tw := range res.Tasks {
		fmt.Printf("  %-14s worker %d: %6d steps, %8.2fs GPU, %6.2fs host, %6.2fs skipped\n",
			tw.Name, tw.Worker, tw.Steps, tw.KernelTime.Seconds(), tw.HostTime.Seconds(), tw.InsuffWait.Seconds())
	}
	if cfg.Method == freeride.MethodIterative || cfg.Method == freeride.MethodImperative {
		st := res.ManagerStats
		fmt.Printf("manager: %d bubbles (%.1fs), %d served, %d expired, %d RPCs\n",
			st.BubblesAdded, st.BubbleTimeTotal.Seconds(), st.BubblesServed, st.BubblesExpired, st.RPCs)
	}
	return nil
}
