// Command freeride-experiments regenerates the paper's tables and figures
// on the simulated testbed and prints them as text.
//
// Example:
//
//	freeride-experiments -run all -epochs 16
//	freeride-experiments -run table2,fig9
//	freeride-experiments -run list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"freeride/internal/experiments"
	"freeride/internal/sidetask"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "freeride-experiments:", err)
		os.Exit(1)
	}
}

// csvDir, when set via -csv, receives one <name>.csv per experiment whose
// result implements experiments.CSVWriter.
var csvDir string

func writeCSV(name string, res experiments.Rendered) error {
	if csvDir == "" {
		return nil
	}
	emitter, ok := res.(experiments.CSVWriter)
	if !ok {
		return nil
	}
	f, err := os.Create(filepath.Join(csvDir, name+".csv"))
	if err != nil {
		return err
	}
	if err := emitter.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func listIDs() string {
	var b strings.Builder
	for _, e := range experiments.Registered() {
		fmt.Fprintf(&b, "%-9s %s\n", e.Name, e.Desc)
	}
	return b.String()
}

func validIDs() string {
	var names []string
	for _, e := range experiments.Registered() {
		names = append(names, e.Name)
	}
	return strings.Join(names, ",")
}

func run(args []string) error {
	fs := flag.NewFlagSet("freeride-experiments", flag.ContinueOnError)
	which := fs.String("run", "all", "comma-separated experiment ids, 'all', or 'list' (see -list)")
	epochs := fs.Int("epochs", 16, "training epochs per run (paper: 128)")
	seed := fs.Int64("seed", 1, "simulation seed (per-cell seeds of every sweep derive from it)")
	realWork := fs.Bool("realwork", false, "run real side-task computation during sweeps (slower)")
	list := fs.Bool("list", false, "list experiment ids and exit")
	cross := fs.Bool("cross", false, "widen grid sweeps to their full cross product (schedules, serving)")
	shard := fs.String("shard", "", "run only shard k of n of every grid sweep, as k/n (faults, drift, schedules, serving)")
	fs.StringVar(&csvDir, "csv", "", "directory to write per-sweep CSV files into (every experiment with a CSV emitter)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list || *which == "list" {
		fmt.Print(listIDs())
		return nil
	}
	opts := experiments.Options{Epochs: *epochs, Seed: *seed, WorkScale: sidetask.WorkNone, Cross: *cross}
	if *realWork {
		opts.WorkScale = sidetask.WorkSmall
	}
	if *shard != "" {
		if _, err := fmt.Sscanf(*shard, "%d/%d", &opts.Shard, &opts.ShardCount); err != nil {
			return fmt.Errorf("bad -shard %q (want k/n): %w", *shard, err)
		}
		if opts.ShardCount < 1 || opts.Shard < 0 || opts.Shard >= opts.ShardCount {
			return fmt.Errorf("bad -shard %q: k must be in [0,n)", *shard)
		}
	}

	// Resolve every requested id before running anything: an unknown id —
	// even alongside valid ones — is a hard error, not a silent skip.
	var selected []experiments.Entry
	if *which == "all" {
		selected = experiments.Registered()
	} else {
		seen := map[string]bool{}
		for _, name := range strings.Split(*which, ",") {
			name = strings.TrimSpace(name)
			if name == "" || seen[name] {
				continue
			}
			seen[name] = true
			e, ok := experiments.Lookup(name)
			if !ok {
				return fmt.Errorf("unknown experiment %q (valid ids: %s)", name, validIDs())
			}
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("no experiments matched %q (use -list)", *which)
	}
	for _, e := range selected {
		start := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		if err := writeCSV(e.Name, res); err != nil {
			return fmt.Errorf("%s: csv: %w", e.Name, err)
		}
		fmt.Printf("===== %s — %s (%.1fs) =====\n%s\n", e.Name, e.Desc, time.Since(start).Seconds(), res.Render())
	}
	return nil
}
