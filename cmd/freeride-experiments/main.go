// Command freeride-experiments regenerates the paper's tables and figures
// on the simulated testbed and prints them as text.
//
// Example:
//
//	freeride-experiments -run all -epochs 16
//	freeride-experiments -run table2,fig9
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"freeride/internal/experiments"
	"freeride/internal/sidetask"
)

type runner struct {
	name string
	desc string
	fn   func(experiments.Options) (string, error)
}

var runners = []runner{
	{"table1", "side-task throughput across platforms", func(o experiments.Options) (string, error) {
		r, err := experiments.RunTable1(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"table2", "time increase and cost savings per method", func(o experiments.Options) (string, error) {
		r, err := experiments.RunTable2(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"fig1", "epoch timeline, SM occupancy and per-stage memory", func(o experiments.Options) (string, error) {
		r, err := experiments.RunFigure1(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"fig2", "bubble shapes and rates across model sizes", func(o experiments.Options) (string, error) {
		r, err := experiments.RunFigure2(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"fig7ab", "sensitivity to side-task batch size", func(o experiments.Options) (string, error) {
		r, err := experiments.RunFigure7BatchSize(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"fig7cd", "sensitivity to main model size", func(o experiments.Options) (string, error) {
		r, err := experiments.RunFigure7ModelSize(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"fig7ef", "sensitivity to micro-batch count", func(o experiments.Options) (string, error) {
		r, err := experiments.RunFigure7MicroBatch(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"fig8", "GPU resource limit demonstrations", func(o experiments.Options) (string, error) {
		r, err := experiments.RunFigure8(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"fig9", "bubble time breakdown", func(o experiments.Options) (string, error) {
		r, err := experiments.RunFigure9(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"faults", "fault-injection sweep: harvest vs recovery overhead", func(o experiments.Options) (string, error) {
		r, err := experiments.RunFaultSweep(o)
		if err != nil {
			return "", err
		}
		if err := writeCSV("faults", r.WriteCSV); err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"drift", "dynamic-bubble drift sweep: online re-profiling vs profile-once", func(o experiments.Options) (string, error) {
		r, err := experiments.RunDriftSweep(o)
		if err != nil {
			return "", err
		}
		if err := writeCSV("drift", r.WriteCSV); err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"schedules", "schedule-zoo sweep: harvest vs bubble ratio per schedule", func(o experiments.Options) (string, error) {
		r, err := experiments.RunScheduleSweep(o)
		if err != nil {
			return "", err
		}
		if err := writeCSV("schedules", r.WriteCSV); err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"ablations", "grace period / RPC latency / safety margin sweeps", func(o experiments.Options) (string, error) {
		var b strings.Builder
		for _, f := range []func(experiments.Options) (*experiments.AblationResult, error){
			experiments.RunAblationGrace,
			experiments.RunAblationRPCLatency,
			experiments.RunAblationSafetyMargin,
			experiments.RunAblationMultiTask,
			experiments.RunAblationInterleaved,
		} {
			r, err := f(o)
			if err != nil {
				return "", err
			}
			b.WriteString(r.Render())
			b.WriteByte('\n')
		}
		return b.String(), nil
	}},
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "freeride-experiments:", err)
		os.Exit(1)
	}
}

// csvDir, when set via -csv, receives one <name>.csv per sweep that has a
// CSV emitter.
var csvDir string

func writeCSV(name string, emit func(io.Writer) error) error {
	if csvDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(csvDir, name+".csv"))
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(args []string) error {
	fs := flag.NewFlagSet("freeride-experiments", flag.ContinueOnError)
	which := fs.String("run", "all", "comma-separated experiment ids, or 'all' (ids: table1,table2,fig1,fig2,fig7ab,fig7cd,fig7ef,fig8,fig9,faults,drift,schedules,ablations)")
	epochs := fs.Int("epochs", 16, "training epochs per run (paper: 128)")
	seed := fs.Int64("seed", 1, "simulation seed")
	realWork := fs.Bool("realwork", false, "run real side-task computation during sweeps (slower)")
	list := fs.Bool("list", false, "list experiment ids and exit")
	cross := fs.Bool("cross", false, "widen grid sweeps to their full cross product (schedules)")
	shard := fs.String("shard", "", "run only shard k of n of a grid sweep, as k/n (schedules)")
	fs.StringVar(&csvDir, "csv", "", "directory to write per-sweep CSV files into (every sweep with a CSV emitter: faults, drift, schedules)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, r := range runners {
			fmt.Printf("%-9s %s\n", r.name, r.desc)
		}
		return nil
	}
	opts := experiments.Options{Epochs: *epochs, Seed: *seed, WorkScale: sidetask.WorkNone, Cross: *cross}
	if *realWork {
		opts.WorkScale = sidetask.WorkSmall
	}
	if *shard != "" {
		if _, err := fmt.Sscanf(*shard, "%d/%d", &opts.Shard, &opts.ShardCount); err != nil {
			return fmt.Errorf("bad -shard %q (want k/n): %w", *shard, err)
		}
		if opts.ShardCount < 1 || opts.Shard < 0 || opts.Shard >= opts.ShardCount {
			return fmt.Errorf("bad -shard %q: k must be in [0,n)", *shard)
		}
	}

	want := map[string]bool{}
	if *which == "all" {
		for _, r := range runners {
			want[r.name] = true
		}
	} else {
		for _, name := range strings.Split(*which, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	ran := 0
	for _, r := range runners {
		if !want[r.name] {
			continue
		}
		start := time.Now()
		out, err := r.fn(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		fmt.Printf("===== %s — %s (%.1fs) =====\n%s\n", r.name, r.desc, time.Since(start).Seconds(), out)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched %q (use -list)", *which)
	}
	return nil
}
