package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("list: %v", err)
	}
	if err := run([]string{"-run", "list"}); err != nil {
		t.Fatalf("-run list: %v", err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig1", "-epochs", "4"}); err != nil {
		t.Fatalf("fig1: %v", err)
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

// An unknown id alongside valid ones must fail upfront — before any of the
// valid experiments run — not silently skip.
func TestRunUnknownIDAmongValid(t *testing.T) {
	err := run([]string{"-run", "fig1,fig99", "-epochs", "4"})
	if err == nil {
		t.Fatal("unknown experiment id among valid ones accepted")
	}
	if !strings.Contains(err.Error(), "fig99") {
		t.Fatalf("error does not name the bad id: %v", err)
	}
	if !strings.Contains(err.Error(), "serving") {
		t.Fatalf("error does not list valid ids: %v", err)
	}
}

func TestRunServingSharded(t *testing.T) {
	if err := run([]string{"-run", "serving", "-epochs", "4", "-shard", "0/4"}); err != nil {
		t.Fatalf("serving shard: %v", err)
	}
}
