package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("list: %v", err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig1", "-epochs", "4"}); err != nil {
		t.Fatalf("fig1: %v", err)
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}
