// Command freeride-profile runs FreeRide's two offline profilers (paper
// §4.3): the bubble profiler, which measures each stage's bubble shapes for
// a model/schedule combination, and the automated side-task profiler, which
// measures a task's GPU memory footprint and per-step duration.
//
// Example:
//
//	freeride-profile -bubbles -model 3.6b -microbatches 4
//	freeride-profile -task resnet18 -mode iterative
package main

import (
	"flag"
	"fmt"
	"os"

	"freeride"
	"freeride/internal/model"
	"freeride/internal/profiler"
	"freeride/internal/sidetask"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "freeride-profile:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("freeride-profile", flag.ContinueOnError)
	bubbles := fs.Bool("bubbles", false, "profile pipeline bubbles")
	llmName := fs.String("model", "3.6b", "main model for bubble profiling")
	mbs := fs.Int("microbatches", 4, "micro-batches for bubble profiling")
	taskName := fs.String("task", "", "side task to profile (resnet18, pagerank, ...)")
	mode := fs.String("mode", "iterative", "side-task interface: iterative|imperative")
	seed := fs.Int64("seed", 1, "profiling seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*bubbles && *taskName == "" {
		return fmt.Errorf("nothing to do: pass -bubbles and/or -task NAME")
	}

	if *bubbles {
		llm, err := model.LLMByName(*llmName)
		if err != nil {
			return err
		}
		cfg := freeride.DefaultConfig()
		cfg.LLM = llm
		cfg.MicroBatches = *mbs
		sess, err := freeride.NewSession(cfg)
		if err != nil {
			return err
		}
		prof := sess.Profile
		fmt.Printf("bubble profile: %s, %d stages, %d micro-batches\n", llm.Name, cfg.Stages, *mbs)
		fmt.Printf("epoch span %.2fs, bubble rate %.1f%%\n\n", prof.EpochSpan.Seconds(), 100*prof.BubbleRate())
		for _, sp := range prof.Stages {
			fmt.Printf("stage %d: available memory %.1f GB, bubble time %.2fs/epoch\n",
				sp.Stage, float64(sp.MemAvailable)/float64(model.GiB), sp.BubbleTime.Seconds())
			for _, tpl := range sp.Templates {
				fmt.Printf("  type-%s at +%.2fs for %.2fs\n", tpl.Type, tpl.Offset.Seconds(), tpl.Duration.Seconds())
			}
		}
		fmt.Println()
	}

	if *taskName != "" {
		profile, err := model.TaskByName(*taskName)
		if err != nil {
			return err
		}
		m := sidetask.ModeIterative
		if *mode == "imperative" {
			m = sidetask.ModeImperative
		}
		res, err := profiler.Profile(profiler.BuiltinFactory(profile, m, sidetask.WorkSmall), profiler.Options{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Printf("side-task profile: %s (%s interface)\n", profile.Name, m)
		fmt.Printf("  gpu_memory_requirement: %.2f GB\n", float64(res.MemBytes)/float64(model.GiB))
		if res.StepTime > 0 {
			fmt.Printf("  per_step_duration:      %.4fs (over %d steps)\n", res.StepTime.Seconds(), res.Steps)
		} else {
			fmt.Printf("  per_step_duration:      n/a (imperative tasks are not step-wise)\n")
		}
		fmt.Printf("  create_time:            %.2fs\n", res.CreateTime.Seconds())
		fmt.Printf("  init_time:              %.2fs\n", res.InitTime.Seconds())
	}
	return nil
}
