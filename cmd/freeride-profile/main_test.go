package main

import "testing"

func TestProfileBubbles(t *testing.T) {
	if err := run([]string{"-bubbles", "-model", "3.6b"}); err != nil {
		t.Fatalf("bubbles: %v", err)
	}
}

func TestProfileTask(t *testing.T) {
	if err := run([]string{"-task", "pagerank"}); err != nil {
		t.Fatalf("task: %v", err)
	}
}

func TestProfileImperativeTask(t *testing.T) {
	if err := run([]string{"-task", "image", "-mode", "imperative"}); err != nil {
		t.Fatalf("imperative: %v", err)
	}
}

func TestProfileNothingErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no-op invocation accepted")
	}
}

func TestProfileUnknownTask(t *testing.T) {
	if err := run([]string{"-task", "nope"}); err == nil {
		t.Fatal("unknown task accepted")
	}
}
