// Command freeride-bench runs the simulator's performance benchmarks and
// emits a machine-readable JSON report, so the perf trajectory of the
// reproduction is recorded alongside its accuracy. The headline number is
// the wall-clock of the Table 2 grid (the benchmark the perf acceptance
// criteria track); the micro-benchmarks isolate the engine event loop and
// the in-memory RPC fast path.
//
// Example:
//
//	freeride-bench -out BENCH_1.json -iters 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"freeride"
	"freeride/internal/core"
	"freeride/internal/experiments"
	"freeride/internal/freerpc"
	"freeride/internal/model"
	"freeride/internal/sidetask"
	"freeride/internal/simgpu"
	"freeride/internal/simproc"
	"freeride/internal/simtime"
)

// Report is the emitted JSON document.
type Report struct {
	Benchmark  string    `json:"benchmark"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Timestamp  time.Time `json:"timestamp"`

	// Table2NsPerOp is each measured wall-clock of one full Table 2 grid.
	Table2NsPerOp []int64 `json:"table2_ns_per_op"`
	// Table2BestNs is the minimum (least-noise) observation.
	Table2BestNs int64 `json:"table2_best_ns"`
	// BaselineNsPerOp are reference observations of the same grid on an
	// earlier revision (passed via -baseline-ns), interleaved with the
	// current runs on the same machine for a fair comparison.
	BaselineNsPerOp []int64 `json:"baseline_ns_per_op,omitempty"`
	BaselineDesc    string  `json:"baseline_desc,omitempty"`
	// Speedup is best-baseline / best-current when a baseline is given.
	Speedup float64 `json:"speedup,omitempty"`

	// Reproduction metrics (must be invariant under perf work).
	IterativeIPct float64 `json:"iterative_I_pct"`
	IterativeSPct float64 `json:"iterative_S_pct"`
	MixedSPct     float64 `json:"mixed_S_pct"`

	// Serving headline cell (Poisson default trace, FreeRide iterative,
	// ResNet18 everywhere): the p99 request latency and the side-task
	// kernel time harvested from the serving bubbles. Informational — the
	// compare gate does not bind them.
	ServingP99Ns       int64   `json:"serving_p99_ns,omitempty"`
	ServingHarvestGPUs float64 `json:"serving_harvest_gpu_s,omitempty"`

	// ManagerMode records which Algorithm-2 driver the grid ran under
	// (event-driven is the default; polling is the differential oracle).
	ManagerMode string `json:"manager_mode,omitempty"`
	// Rebalance records which GPU scheduler pass the grid ran under
	// (incremental is the default; full is the differential oracle).
	Rebalance string `json:"rebalance,omitempty"`
	// ShareCache records whether the water-fill share cache was enabled
	// ("on", the default) or the grid ran the recompute-every-time oracle
	// ("off").
	ShareCache string `json:"share_cache,omitempty"`
	// StepFuse records whether the side-task step loop fused the host
	// overhead into the kernel launch ("on", the default) or dispatched the
	// two-event form ("off", the oracle).
	StepFuse string `json:"step_fuse,omitempty"`
	// SidetaskEventsPerStep is StepEvents/Steps aggregated over the grid's
	// iterative rows: 1.0 fused (one engine event per step), 2.0 unfused.
	SidetaskEventsPerStep float64 `json:"sidetask_events_per_step,omitempty"`

	// Micro-benchmarks.
	EngineNsPerOp     float64 `json:"engine_ns_per_op"`
	EngineAllocsPerOp float64 `json:"engine_allocs_per_op"`
	RPCNsPerOp        float64 `json:"rpc_ns_per_op"`
	RPCAllocsPerOp    float64 `json:"rpc_allocs_per_op"`
	RPCNotifyNsPerOp  float64 `json:"rpc_notify_ns_per_op"`
	// RPCTimeout* measure a Go round-trip with a deadline armed (the
	// manager's shape): the per-peer deadline wheel plus the pendingCall
	// free-list keep it allocation-free too.
	RPCTimeoutNsPerOp     float64 `json:"rpc_timeout_ns_per_op,omitempty"`
	RPCTimeoutAllocsPerOp float64 `json:"rpc_timeout_allocs_per_op"`
	// ParkResume measures one goroutine-process sleep→park→wake→resume
	// cycle (the futex handshake); Exec one blocking kernel round trip;
	// InlineStep one event-loop continuation cycle. All three paths are
	// pinned at 0 allocs/op by tests.
	ParkResumeNsPerOp     float64 `json:"park_resume_ns_per_op,omitempty"`
	ParkResumeAllocsPerOp float64 `json:"park_resume_allocs_per_op"`
	ExecNsPerOp           float64 `json:"exec_ns_per_op,omitempty"`
	ExecAllocsPerOp       float64 `json:"exec_allocs_per_op"`
	InlineStepNsPerOp     float64 `json:"inline_step_ns_per_op,omitempty"`
	ParallelismApplied    int     `json:"parallelism"`
}

// compareReports enforces the perf acceptance gate between two recorded
// reports: the reproduction metrics must be bit-identical, and the grid
// wall-clock must not regress by more than maxRegress (fractional).
func compareReports(oldPath, newPath string, maxRegress float64) error {
	var oldRep, newRep Report
	for _, x := range []struct {
		path string
		into *Report
	}{{oldPath, &oldRep}, {newPath, &newRep}} {
		data, err := os.ReadFile(x.path)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, x.into); err != nil {
			return fmt.Errorf("%s: %w", x.path, err)
		}
	}
	if oldRep.IterativeIPct != newRep.IterativeIPct ||
		oldRep.IterativeSPct != newRep.IterativeSPct ||
		oldRep.MixedSPct != newRep.MixedSPct {
		return fmt.Errorf("reproduction metrics diverged: %s has I=%v S=%v mixed=%v, %s has I=%v S=%v mixed=%v",
			oldPath, oldRep.IterativeIPct, oldRep.IterativeSPct, oldRep.MixedSPct,
			newPath, newRep.IterativeIPct, newRep.IterativeSPct, newRep.MixedSPct)
	}
	limit := float64(oldRep.Table2BestNs) * (1 + maxRegress)
	if float64(newRep.Table2BestNs) > limit {
		return fmt.Errorf("table2_best_ns regressed: %s %.2fs vs %s %.2fs (limit %.2fs)",
			newPath, float64(newRep.Table2BestNs)/1e9, oldPath, float64(oldRep.Table2BestNs)/1e9, limit/1e9)
	}
	fmt.Fprintf(os.Stderr, "compare ok: %s %.2fs -> %s %.2fs (%.2fx), metrics bit-identical\n",
		oldPath, float64(oldRep.Table2BestNs)/1e9, newPath, float64(newRep.Table2BestNs)/1e9,
		float64(oldRep.Table2BestNs)/float64(newRep.Table2BestNs))
	return nil
}

func main() {
	out := flag.String("out", "BENCH_1.json", "output JSON path ('-' for stdout)")
	iters := flag.Int("iters", 3, "Table 2 grid repetitions")
	epochs := flag.Int("epochs", 8, "epochs per training run")
	parallel := flag.Int("parallel", 0, "grid parallelism (0 = GOMAXPROCS)")
	managerMode := flag.String("manager", "event", "Algorithm-2 driver: event, polling or immediate")
	rebalance := flag.String("rebalance", "incremental", "GPU scheduler pass: incremental or full (the oracle)")
	shareCache := flag.String("sharecache", "on", "water-fill share cache: on or off (the oracle)")
	stepFuse := flag.String("stepfuse", "on", "side-task step-event fusion: on or off (the oracle)")
	baselineNs := flag.String("baseline-ns", "", "comma-separated baseline ns/op observations to record")
	baselineDesc := flag.String("baseline-desc", "", "description of the baseline revision")
	compareNew := flag.String("compare", "", "compare mode: path of the newer report (no benchmarks run)")
	compareOld := flag.String("against", "", "compare mode: path of the older baseline report")
	maxRegress := flag.Float64("max-regress", 0.10, "compare mode: allowed fractional table2_best_ns regression")
	flag.Parse()

	if *compareOld != "" || *compareNew != "" {
		if *compareOld == "" || *compareNew == "" {
			fatalf("compare mode needs both -compare NEW.json and -against OLD.json")
		}
		if err := compareReports(*compareOld, *compareNew, *maxRegress); err != nil {
			fatalf("%v", err)
		}
		return
	}

	mode, err := core.ParseManagerMode(*managerMode)
	if err != nil {
		fatalf("%v", err)
	}
	var fullRebalance bool
	switch *rebalance {
	case "incremental":
	case "full":
		fullRebalance = true
	default:
		fatalf("unknown -rebalance %q (want incremental or full)", *rebalance)
	}
	var noShareCache bool
	switch *shareCache {
	case "on":
	case "off":
		noShareCache = true
	default:
		fatalf("unknown -sharecache %q (want on or off)", *shareCache)
	}
	var noStepFuse bool
	switch *stepFuse {
	case "on":
	case "off":
		noStepFuse = true
	default:
		fatalf("unknown -stepfuse %q (want on or off)", *stepFuse)
	}

	rep := Report{
		Benchmark:          "BenchmarkTable2",
		GoMaxProcs:         runtime.GOMAXPROCS(0),
		Timestamp:          time.Now().UTC(),
		ParallelismApplied: *parallel,
		ManagerMode:        mode.String(),
		Rebalance:          *rebalance,
		ShareCache:         *shareCache,
		StepFuse:           *stepFuse,
	}

	opts := experiments.Options{
		Epochs: *epochs, WorkScale: sidetask.WorkNone, Seed: 1, Parallelism: *parallel,
		ManagerMode: mode, FullRebalance: fullRebalance, NoShareCache: noShareCache,
		NoStepFuse: noStepFuse,
	}
	for i := 0; i < *iters; i++ {
		start := time.Now()
		res, err := experiments.RunTable2(opts)
		if err != nil {
			fatalf("table2: %v", err)
		}
		ns := time.Since(start).Nanoseconds()
		rep.Table2NsPerOp = append(rep.Table2NsPerOp, ns)
		if rep.Table2BestNs == 0 || ns < rep.Table2BestNs {
			rep.Table2BestNs = ns
		}
		meanI, meanS := res.Averages(freeride.MethodIterative)
		mixed, _ := res.Row("mixed", freeride.MethodIterative)
		rep.IterativeIPct = 100 * meanI
		rep.IterativeSPct = 100 * meanS
		rep.MixedSPct = 100 * mixed.S
		var steps, events uint64
		for _, row := range res.Rows {
			if row.Method != freeride.MethodIterative {
				continue
			}
			steps += row.Steps
			events += row.StepEvents
		}
		if steps > 0 {
			rep.SidetaskEventsPerStep = float64(events) / float64(steps)
		}
		fmt.Fprintf(os.Stderr, "table2 run %d/%d: %.2fs (I=%.4f%% S=%.3f%% ev/step=%.2f)\n",
			i+1, *iters, float64(ns)/1e9, rep.IterativeIPct, rep.IterativeSPct, rep.SidetaskEventsPerStep)
	}
	if !noStepFuse && rep.SidetaskEventsPerStep > 1.0 {
		fatalf("sidetask_events_per_step %.2f > 1.0 with fusion on — a step dispatched more than one engine event",
			rep.SidetaskEventsPerStep)
	}

	// Serving headline cell: the default Poisson trace under the same
	// epochs knob, FreeRide iterative with a ResNet18 per eligible stage.
	{
		cfg := freeride.DefaultConfig()
		cfg.Epochs = *epochs
		cfg.WorkScale = sidetask.WorkNone
		cfg.Seed = 1
		cfg.Method = freeride.MethodIterative
		cfg.ManagerMode = mode
		cfg.Serving = &freeride.ServingConfig{Guard: 1}
		sess, err := freeride.NewSession(cfg)
		if err != nil {
			fatalf("serving cell: %v", err)
		}
		if _, err := sess.SubmitEverywhere(model.ResNet18); err != nil {
			fatalf("serving cell submit: %v", err)
		}
		res, err := sess.Run()
		if err != nil {
			fatalf("serving cell run: %v", err)
		}
		rep.ServingP99Ns = res.ServingStats.P99.Nanoseconds()
		var harvest time.Duration
		for _, tw := range res.Tasks {
			harvest += tw.KernelTime
		}
		rep.ServingHarvestGPUs = harvest.Seconds()
		fmt.Fprintf(os.Stderr, "serving cell: p99=%.2fs harvest=%.2fs\n",
			float64(rep.ServingP99Ns)/1e9, rep.ServingHarvestGPUs)
	}

	eng := testing.Benchmark(func(b *testing.B) {
		v := simtime.NewVirtual()
		fn := func() {}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v.ScheduleDetached(time.Microsecond, "bench", fn)
			v.Step()
		}
	})
	rep.EngineNsPerOp = float64(eng.NsPerOp())
	rep.EngineAllocsPerOp = float64(eng.AllocsPerOp())

	rpc := testing.Benchmark(func(b *testing.B) {
		v := simtime.NewVirtual()
		mux := freerpc.NewMux()
		type params struct {
			A int64 `json:"a"`
		}
		freerpc.HandleFunc(mux, "Echo", func(p params) (any, error) { return p, nil })
		c1, c2 := freerpc.MemPipe(v, time.Microsecond)
		client := freerpc.NewPeer(v, c1, nil)
		freerpc.NewPeer(v, c2, mux)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			client.Go("Echo", params{A: 1}, 0, nil)
			v.MustDrain(4)
		}
	})
	rep.RPCNsPerOp = float64(rpc.NsPerOp())
	rep.RPCAllocsPerOp = float64(rpc.AllocsPerOp())

	rpcTimeout := testing.Benchmark(func(b *testing.B) {
		v := simtime.NewVirtual()
		mux := freerpc.NewMux()
		type params struct {
			A int64 `json:"a"`
		}
		freerpc.HandleFunc(mux, "Echo", func(p params) (any, error) { return nil, nil })
		c1, c2 := freerpc.MemPipe(v, time.Microsecond)
		client := freerpc.NewPeer(v, c1, nil)
		freerpc.NewPeer(v, c2, mux)
		boxed := any(params{A: 1})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			client.Go("Echo", boxed, 10*time.Microsecond, nil)
			v.MustDrain(8)
		}
	})
	rep.RPCTimeoutNsPerOp = float64(rpcTimeout.NsPerOp())
	rep.RPCTimeoutAllocsPerOp = float64(rpcTimeout.AllocsPerOp())

	notify := testing.Benchmark(func(b *testing.B) {
		v := simtime.NewVirtual()
		mux := freerpc.NewMux()
		type params struct {
			A int64 `json:"a"`
		}
		freerpc.HandleFunc(mux, "Report", func(p params) (any, error) { return nil, nil })
		c1, c2 := freerpc.MemPipe(v, time.Microsecond)
		client := freerpc.NewPeer(v, c1, nil)
		freerpc.NewPeer(v, c2, mux)
		for i := 0; i < b.N; i++ {
			_ = client.Notify("Report", params{A: 1})
			v.MustDrain(2)
		}
	})
	rep.RPCNotifyNsPerOp = float64(notify.NsPerOp())

	park := testing.Benchmark(func(b *testing.B) {
		v := simtime.NewVirtual()
		procs := simproc.NewRuntime(v)
		procs.Spawn("sleeper", func(p *simproc.Process) error {
			for {
				p.Sleep(time.Microsecond)
			}
		})
		for i := 0; i < 16; i++ {
			v.Step()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.Step()
		}
	})
	rep.ParkResumeNsPerOp = float64(park.NsPerOp())
	rep.ParkResumeAllocsPerOp = float64(park.AllocsPerOp())

	exec := testing.Benchmark(func(b *testing.B) {
		v := simtime.NewVirtual()
		procs := simproc.NewRuntime(v)
		dev := simgpu.NewDevice(v, simgpu.DeviceConfig{Name: "bench-gpu", NoTraces: true})
		c, err := dev.NewClient(simgpu.ClientConfig{Name: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		spec := &simgpu.KernelSpec{Name: "k", Duration: time.Microsecond, Demand: 0.5, Weight: 0.5}
		procs.Spawn("execer", func(p *simproc.Process) error {
			for {
				if err := c.Exec(p, spec); err != nil {
					return err
				}
			}
		})
		for i := 0; i < 16; i++ {
			v.Step()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.Step()
		}
	})
	rep.ExecNsPerOp = float64(exec.NsPerOp())
	rep.ExecAllocsPerOp = float64(exec.AllocsPerOp())

	inline := testing.Benchmark(func(b *testing.B) {
		v := simtime.NewVirtual()
		procs := simproc.NewRuntime(v)
		procs.SpawnInline("ticker", func(p *simproc.Process) {
			var k func(any)
			k = func(any) { p.SleepThen(time.Microsecond, k) }
			p.SleepThen(time.Microsecond, k)
		})
		for i := 0; i < 16; i++ {
			v.Step()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.Step()
		}
	})
	rep.InlineStepNsPerOp = float64(inline.NsPerOp())

	if *baselineNs != "" {
		rep.BaselineDesc = *baselineDesc
		var best int64
		for _, f := range strings.Split(*baselineNs, ",") {
			n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				fatalf("bad -baseline-ns entry %q: %v", f, err)
			}
			rep.BaselineNsPerOp = append(rep.BaselineNsPerOp, n)
			if best == 0 || n < best {
				best = n
			}
		}
		if best > 0 && rep.Table2BestNs > 0 {
			rep.Speedup = float64(best) / float64(rep.Table2BestNs)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (best table2: %.2fs)\n", *out, float64(rep.Table2BestNs)/1e9)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "freeride-bench: "+format+"\n", args...)
	os.Exit(1)
}
