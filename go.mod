module freeride

go 1.24
